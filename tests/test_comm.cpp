// Communicator management: dup, split, context isolation, runtime basics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mpl/mpl.hpp"

using mpl::Comm;
using mpl::Datatype;

namespace {
const Datatype kInt = Datatype::of<int>();
}

TEST(Runtime, SingleProcess) {
  mpl::run(1, [](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
  });
}

TEST(Runtime, RanksAreDistinct) {
  constexpr int kP = 8;
  std::vector<std::atomic<int>> seen(kP);
  mpl::run(kP, [&](Comm& c) {
    seen[static_cast<std::size_t>(c.rank())].fetch_add(1);
    EXPECT_EQ(c.size(), kP);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Runtime, ZeroProcsRejected) {
  EXPECT_THROW(mpl::run(0, [](Comm&) {}), mpl::Error);
}

TEST(Runtime, ManyProcesses) {
  mpl::run(64, [](Comm& c) { mpl::barrier(c); });
}

TEST(CommDup, IsolatedMatchingContext) {
  mpl::run(2, [](Comm& c) {
    Comm d = c.dup();
    EXPECT_EQ(d.rank(), c.rank());
    EXPECT_EQ(d.size(), c.size());
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(&a, 1, kInt, 1, 0);
      d.send(&b, 1, kInt, 1, 0);
    } else {
      int v = 0;
      // Receive on the dup first: must get the dup's message even though
      // the message on `c` arrived earlier with identical (src, tag).
      d.recv(&v, 1, kInt, 0, 0);
      EXPECT_EQ(v, 2);
      c.recv(&v, 1, kInt, 0, 0);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(CommDup, RepeatedDupsAreIndependent) {
  mpl::run(3, [](Comm& c) {
    Comm d1 = c.dup();
    Comm d2 = d1.dup();
    mpl::barrier(d1);
    mpl::barrier(d2);
    EXPECT_EQ(d2.size(), 3);
  });
}

TEST(CommSplit, EvenOddGroups) {
  mpl::run(6, [](Comm& c) {
    Comm g = c.split(c.rank() % 2, c.rank());
    ASSERT_TRUE(g.valid());
    EXPECT_EQ(g.size(), 3);
    EXPECT_EQ(g.rank(), c.rank() / 2);
    // Sum the world ranks within each group.
    const int sum = mpl::allreduce(c.rank(), mpl::op::plus{}, g);
    EXPECT_EQ(sum, c.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommSplit, KeyControlsRankOrder) {
  mpl::run(4, [](Comm& c) {
    // Reverse the rank order via the key.
    Comm g = c.split(0, c.size() - c.rank());
    EXPECT_EQ(g.rank(), c.size() - 1 - c.rank());
  });
}

TEST(CommSplit, NegativeColorYieldsInvalid) {
  mpl::run(4, [](Comm& c) {
    Comm g = c.split(c.rank() == 0 ? -1 : 0, 0);
    if (c.rank() == 0) {
      EXPECT_FALSE(g.valid());
    } else {
      ASSERT_TRUE(g.valid());
      EXPECT_EQ(g.size(), 3);
    }
  });
}

TEST(CommSplit, SingletonGroups) {
  mpl::run(4, [](Comm& c) {
    Comm g = c.split(c.rank(), 0);  // every process its own group
    EXPECT_EQ(g.size(), 1);
    EXPECT_EQ(g.rank(), 0);
  });
}

TEST(Comm, HardSyncDoesNotAdvanceClocks) {
  mpl::RunOptions opts;
  opts.net = mpl::NetConfig::omnipath();
  mpl::run(
      4,
      [](Comm& c) {
        const double before = c.vclock();
        c.hard_sync();
        EXPECT_EQ(c.vclock(), before);
      },
      opts);
}

TEST(Comm, CollectiveChannelInvisibleToUserWildcards) {
  mpl::run(2, [](Comm& c) {
    // A barrier's internal messages must not be caught by ANY/ANY receives.
    if (c.rank() == 0) {
      int v = -1;
      mpl::Request r = c.irecv(&v, 1, kInt, mpl::ANY_SOURCE, mpl::ANY_TAG);
      mpl::barrier(c);
      const int x = 11;
      c.send(&x, 1, kInt, 0, 99);  // self message satisfies the wildcard
      r.wait();
      EXPECT_EQ(v, 11);
    } else {
      mpl::barrier(c);
    }
  });
}
