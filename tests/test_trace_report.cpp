// Critical-path attribution: the per-phase LogGP breakdown of a traced
// section must reproduce the section's virtual makespan.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"
#include "trace/report.hpp"

using cartcomm::Neighborhood;
using cartcomm::Schedule;

namespace {

const mpl::Datatype kInt = mpl::Datatype::of<int>();

mpl::NetConfig test_model() {
  mpl::NetConfig c;
  c.enabled = true;
  c.o = 1e-6;
  c.L = 5e-6;
  c.G = 1e-9;
  c.copy = 2e-9;
  c.o_block = 1e-7;
  c.G_pack = 5e-10;
  return c;
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(TraceReport, AttributionCoversMakespan) {
  TempFile out("trace_report.json");
  mpl::RunOptions opts;
  opts.net = test_model();
  opts.trace.chrome_path = out.path;
  opts.trace.start_enabled = false;  // record only the section window
  mpl::run(
      9,
      [](mpl::Comm& world) {
        const std::vector<int> dims{3, 3};
        const Neighborhood nb = Neighborhood::von_neumann(2, true);
        auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
        const int t = nb.count();
        const int m = 3;
        std::vector<int> sb(static_cast<std::size_t>(t * m), world.rank());
        std::vector<int> rb(static_cast<std::size_t>(t * m), -1);
        std::vector<cartcomm::SendBlock> sends(static_cast<std::size_t>(t));
        std::vector<cartcomm::RecvBlock> recvs(static_cast<std::size_t>(t));
        for (int i = 0; i < t; ++i) {
          sends[static_cast<std::size_t>(i)] = {
              &sb[static_cast<std::size_t>(i * m)], m, kInt};
          recvs[static_cast<std::size_t>(i)] = {
              &rb[static_cast<std::size_t>(i * m)], m, kInt};
        }
        Schedule s = cartcomm::build_alltoall_schedule(cc, sends, recvs);

        const mpl::Comm& comm = cc.comm();
        comm.vclock_reset_sync();
        comm.set_trace_enabled(true);
        EXPECT_EQ(comm.trace_section_begin("5-point alltoall"), 0);
        s.execute(comm);
        comm.trace_section_end();
        comm.set_trace_enabled(false);
        comm.hard_sync();
      },
      opts);

  const std::vector<trace::SectionReport> reports =
      trace::analyze_file(out.path);
  ASSERT_EQ(reports.size(), 1u);
  const trace::SectionReport& r = reports.front();
  EXPECT_EQ(r.section, 0);
  EXPECT_EQ(r.label, "5-point alltoall");
  EXPECT_EQ(r.nranks, 9);
  EXPECT_TRUE(r.virtual_clock);
  ASSERT_GE(r.critical_rank, 0);
  EXPECT_LT(r.critical_rank, 9);
  EXPECT_GT(r.makespan, 0.0);
  // The invariant the whole layer is built on: component sums along the
  // critical rank reproduce the virtual makespan (1% acceptance margin;
  // in practice the residue is zero).
  EXPECT_NEAR(r.attributed, r.makespan, 0.01 * r.makespan);
  EXPECT_GE(r.unattributed, 0.0);
  EXPECT_LE(r.unattributed, 0.01 * r.makespan);
  // The 5-point-with-self schedule has messaging phases plus the local
  // copy phase; some latency and overhead must have been attributed.
  EXPECT_FALSE(r.phases.empty());
  using trace::Component;
  EXPECT_GT(r.comp_total[static_cast<int>(Component::o)], 0.0);
  EXPECT_GT(r.comp_total[static_cast<int>(Component::L)], 0.0);
  EXPECT_GT(r.comp_total[static_cast<int>(Component::copy)], 0.0);

  const std::string text = trace::format(reports);
  EXPECT_NE(text.find("5-point alltoall"), std::string::npos);
  EXPECT_NE(text.find("attribution covers"), std::string::npos);
}

TEST(TraceReport, SyntheticCriticalRankSelection) {
  // Two ranks, one section: rank 1 ends later and must be the critical
  // rank; its single event fully attributes the makespan to latency.
  const char* doc = R"({
    "traceEvents": [
      {"name": "send_post", "ph": "X", "pid": 2, "tid": 0, "ts": 0, "dur": 1,
       "args": {"kind": "send_post", "phase": 0, "round": 0, "section": 0,
                "v_start": 0.0, "v_end": 1.0e-6, "w_start": 0.0, "w_end": 0.0,
                "o": 1.0e-6, "L": 0, "G": 0, "o_block": 0, "G_pack": 0,
                "copy": 0, "idle": 0}},
      {"name": "recv_complete", "ph": "X", "pid": 2, "tid": 1, "ts": 0,
       "dur": 3,
       "args": {"kind": "recv_complete", "phase": 0, "round": 0, "section": 0,
                "v_start": 0.0, "v_end": 3.0e-6, "w_start": 0.0, "w_end": 0.0,
                "o": 0, "L": 3.0e-6, "G": 0, "o_block": 0, "G_pack": 0,
                "copy": 0, "idle": 0}}
    ],
    "otherData": {"nprocs": 2, "clock": "virtual", "netConfig": {}}
  })";
  const std::vector<trace::SectionReport> reports =
      trace::analyze(trace::json::parse(doc));
  ASSERT_EQ(reports.size(), 1u);
  const trace::SectionReport& r = reports.front();
  EXPECT_EQ(r.nranks, 2);
  EXPECT_EQ(r.critical_rank, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0e-6);
  EXPECT_DOUBLE_EQ(r.attributed, 3.0e-6);
  EXPECT_DOUBLE_EQ(r.unattributed, 0.0);
  EXPECT_DOUBLE_EQ(
      r.comp_total[static_cast<int>(trace::Component::L)], 3.0e-6);
}
