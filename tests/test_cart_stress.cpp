// Stress and integration tests: the paper's largest neighborhood, virtual
// clock determinism, the Listing 3 in-place buffer pattern, and several
// communicators operating concurrently.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cart_test_util.hpp"

using cartcomm::Algorithm;
using cartcomm::Neighborhood;

namespace {
const mpl::Datatype kInt = mpl::Datatype::of<int>();
}

TEST(CartStress, LargestPaperNeighborhoodD5N5) {
  // t = 3125 neighbors on a 32-process torus: the paper's biggest case.
  const Neighborhood nb = Neighborhood::stencil(5, 5, -1);
  ASSERT_EQ(nb.count(), 3125);
  carttest::check_alltoall({2, 2, 2, 2, 2}, {}, nb, 1, Algorithm::combining);
  carttest::check_allgather({2, 2, 2, 2, 2}, {}, nb, 1, Algorithm::combining);
}

TEST(CartStress, ScheduleStatsD5N5) {
  mpl::run(32, [](mpl::Comm& world) {
    const std::vector<int> dims(5, 2);
    const Neighborhood nb = Neighborhood::stencil(5, 5, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    std::vector<int> sb(3125), rb(3125);
    auto a2a = cartcomm::alltoall_init(sb.data(), 1, kInt, rb.data(), 1, kInt,
                                       cc, Algorithm::combining);
    EXPECT_EQ(a2a.schedule().rounds(), 20);           // C = d(n-1)
    EXPECT_EQ(a2a.schedule().send_block_count(), 12500);  // Table 1
    auto ag = cartcomm::allgather_init(sb.data(), 1, kInt, rb.data(), 1, kInt,
                                       cc, Algorithm::combining);
    EXPECT_EQ(ag.schedule().rounds(), 20);
    EXPECT_EQ(ag.schedule().send_block_count(), 3124);
  });
}

TEST(CartStress, VclockDeterminismAcrossRuns) {
  auto run_once = [] {
    double result = 0.0;
    mpl::RunOptions opts;
    opts.net = mpl::NetConfig::gemini();
    mpl::run(
        16,
        [&](mpl::Comm& world) {
          const std::vector<int> dims{4, 4};
          auto cc = cartcomm::cart_neighborhood_create(
              world, dims, {}, Neighborhood::stencil(2, 4, -1));
          std::vector<int> sb(16 * 10, 1), rb(16 * 10);
          auto op = cartcomm::alltoall_init(sb.data(), 10, kInt, rb.data(), 10,
                                            kInt, cc, Algorithm::combining);
          world.vclock_reset_sync();
          op.execute();
          op.execute();
          const double v =
              mpl::allreduce(world.vclock(), mpl::op::max{}, world);
          if (world.rank() == 0) result = v;
        },
        opts);
    return result;
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);  // bit-identical regardless of thread scheduling
}

TEST(CartStress, InPlaceHaloBuffersListing3) {
  // Listing 3 uses the same matrix as send and receive buffer: interior
  // regions go out while ghost regions come in — disjoint layouts in one
  // allocation, through one alltoallw.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    constexpr int N = 5;  // interior
    const Neighborhood nb(2, {0, 1, 0, -1, -1, 0, 1, 0});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    std::vector<int> matrix((N + 2) * (N + 2), -1);
    for (int i = 1; i <= N; ++i) {
      for (int j = 1; j <= N; ++j) {
        matrix[static_cast<std::size_t>(i * (N + 2) + j)] =
            world.rank() * 1000 + i * 10 + j;
      }
    }
    const mpl::Datatype ROW = mpl::Datatype::contiguous(N, kInt);
    const mpl::Datatype COL = mpl::Datatype::vector(N, 1, N + 2, kInt);
    auto disp = [](int i, int j) {
      return static_cast<std::ptrdiff_t>((i * (N + 2) + j) * sizeof(int));
    };
    std::vector<int> counts(4, 1);
    std::vector<std::ptrdiff_t> sdisp{disp(1, N), disp(1, 1), disp(1, 1),
                                      disp(N, 1)};
    std::vector<std::ptrdiff_t> rdisp{disp(1, 0), disp(1, N + 1), disp(N + 1, 1),
                                      disp(0, 1)};
    std::vector<mpl::Datatype> stypes{COL, COL, ROW, ROW};
    std::vector<mpl::Datatype> rtypes{COL, COL, ROW, ROW};
    cartcomm::alltoallw(matrix.data(), counts, sdisp, stypes, matrix.data(),
                        counts, rdisp, rtypes, cc, Algorithm::combining);

    // Left ghost column came from the (0,-1)-side neighbor's right column.
    const int src_left = cc.source_ranks()[0];
    for (int i = 1; i <= N; ++i) {
      EXPECT_EQ(matrix[static_cast<std::size_t>(i * (N + 2))],
                src_left * 1000 + i * 10 + N);
    }
    const int src_top = cc.source_ranks()[3];
    for (int j = 1; j <= N; ++j) {
      EXPECT_EQ(matrix[static_cast<std::size_t>(j)], src_top * 1000 + N * 10 + j);
    }
  });
}

TEST(CartStress, ManyCommunicatorsConcurrently) {
  // Several neighborhoods over one world, interleaved persistent ops.
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 4};
    auto cc1 = cartcomm::cart_neighborhood_create(world, dims, {},
                                                  Neighborhood::moore(2));
    auto cc2 = cartcomm::cart_neighborhood_create(
        world, dims, {}, Neighborhood::von_neumann(2));
    auto cc3 = cartcomm::cart_neighborhood_create(
        world, dims, {}, Neighborhood(2, {2, 2, -2, -2}));
    std::vector<int> s1(9, world.rank()), r1(9);
    std::vector<int> s2(4, world.rank() * 2), r2(16);  // 4 blocks of 4
    std::vector<int> s3(2, world.rank() * 3), r3(2);
    auto op1 = cartcomm::alltoall_init(s1.data(), 1, kInt, r1.data(), 1, kInt,
                                       cc1, Algorithm::combining);
    auto op2 = cartcomm::allgather_init(s2.data(), 4, kInt, r2.data(), 4, kInt,
                                        cc2, Algorithm::trivial);
    auto op3 = cartcomm::alltoall_init(s3.data(), 1, kInt, r3.data(), 1, kInt,
                                       cc3, Algorithm::combining);
    for (int iter = 0; iter < 3; ++iter) {
      op1.execute();
      op3.execute();
      op2.execute();
    }
    for (int i = 0; i < 9; ++i) {
      EXPECT_EQ(r1[static_cast<std::size_t>(i)],
                cc1.source_ranks()[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(r3[0], cc3.source_ranks()[0] * 3);
    EXPECT_EQ(r3[1], cc3.source_ranks()[1] * 3);
  });
}

TEST(CartStress, RepeatedCreateDestroyCycles) {
  // Communicator churn: create, use, drop, many times.
  mpl::run(6, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 3};
    for (int cycle = 0; cycle < 20; ++cycle) {
      auto cc = cartcomm::cart_neighborhood_create(
          world, dims, {}, Neighborhood::von_neumann(2));
      std::vector<int> sb(4, cycle), rb(4, -1);
      cartcomm::alltoall(sb.data(), 1, kInt, rb.data(), 1, kInt, cc);
      EXPECT_EQ(rb[0], cycle);
    }
  });
}
