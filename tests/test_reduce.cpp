// Typed reductions.
#include <gtest/gtest.h>

#include <vector>

#include "mpl/mpl.hpp"

using mpl::Comm;

namespace {
class ReduceSizes : public ::testing::TestWithParam<int> {};
}

TEST_P(ReduceSizes, SumToEveryRoot) {
  const int p = GetParam();
  mpl::run(p, [](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      const int v = c.rank() + 1;
      int out = -1;
      mpl::reduce(&v, &out, 1, mpl::op::plus{}, root, c);
      if (c.rank() == root) {
        EXPECT_EQ(out, c.size() * (c.size() + 1) / 2);
      }
    }
  });
}

TEST_P(ReduceSizes, AllreduceSumMinMax) {
  const int p = GetParam();
  mpl::run(p, [](Comm& c) {
    const int r = c.rank();
    EXPECT_EQ(mpl::allreduce(r, mpl::op::plus{}, c), c.size() * (c.size() - 1) / 2);
    EXPECT_EQ(mpl::allreduce(r, mpl::op::min{}, c), 0);
    EXPECT_EQ(mpl::allreduce(r, mpl::op::max{}, c), c.size() - 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSizes, ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(Reduce, VectorValued) {
  mpl::run(4, [](Comm& c) {
    std::vector<double> v{1.0 * c.rank(), 2.0 * c.rank(), -1.0 * c.rank()};
    std::vector<double> out(3, 0.0);
    mpl::allreduce(v.data(), out.data(), 3, mpl::op::plus{}, c);
    EXPECT_DOUBLE_EQ(out[0], 6.0);
    EXPECT_DOUBLE_EQ(out[1], 12.0);
    EXPECT_DOUBLE_EQ(out[2], -6.0);
  });
}

TEST(Reduce, ProductAndBitOr) {
  mpl::run(3, [](Comm& c) {
    EXPECT_EQ(mpl::allreduce(c.rank() + 1, mpl::op::prod{}, c), 6);
    EXPECT_EQ(mpl::allreduce(1 << c.rank(), mpl::op::bit_or{}, c), 0b111);
  });
}

TEST(Reduce, LogicalOps) {
  mpl::run(4, [](Comm& c) {
    const int mine = c.rank() == 2 ? 1 : 0;
    EXPECT_EQ(mpl::allreduce(mine, mpl::op::logical_or{}, c), 1);
    EXPECT_EQ(mpl::allreduce(mine, mpl::op::logical_and{}, c), 0);
  });
}

TEST(Reduce, CustomLambdaOperator) {
  mpl::run(4, [](Comm& c) {
    // max-by-absolute-value as a user-provided commutative op
    const int v = (c.rank() % 2 == 0 ? -1 : 1) * (c.rank() + 1);
    const int out = mpl::allreduce(
        v, [](int a, int b) { return std::abs(a) >= std::abs(b) ? a : b; }, c);
    EXPECT_EQ(out, 4);  // rank 3 contributes +4, the largest magnitude
  });
}

TEST(Reduce, RootOutOfRangeThrows) {
  EXPECT_THROW(mpl::run(2,
                        [](Comm& c) {
                          const int v = 1;
                          int out;
                          mpl::reduce(&v, &out, 1, mpl::op::plus{}, 5, c);
                        }),
               mpl::Error);
}
