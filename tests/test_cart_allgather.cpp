// Correctness of the Cartesian allgather (Algorithm 2) and its tree
// schedule structure (Proposition 3.3).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cart_test_util.hpp"

using cartcomm::Algorithm;
using cartcomm::DimOrder;
using cartcomm::Neighborhood;
using carttest::check_allgather;

namespace {
const std::vector<int> kNoPeriods;
}

TEST(CartAllgather, Moore2DTrivial) {
  check_allgather({3, 4}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 3,
                  Algorithm::trivial);
}

TEST(CartAllgather, Moore2DCombining) {
  check_allgather({3, 4}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 3,
                  Algorithm::combining);
}

TEST(CartAllgather, Moore3DCombining) {
  check_allgather({3, 2, 4}, kNoPeriods, Neighborhood::stencil(3, 3, -1), 2,
                  Algorithm::combining);
}

TEST(CartAllgather, Asymmetric) {
  check_allgather({4, 5}, kNoPeriods, Neighborhood::stencil(2, 4, -1), 2,
                  Algorithm::combining);
}

TEST(CartAllgather, Figure2Neighborhood) {
  // The 4-neighborhood of Figure 2 under every dimension order.
  const Neighborhood nb(3, {-2, 1, 1, -1, 1, 1, 1, 1, 1, 2, 1, 1});
  for (const char* order : {"natural", "increasing_ck", "decreasing_ck"}) {
    check_allgather({5, 3, 3}, kNoPeriods, nb, 2, Algorithm::combining,
                    {{"allgather_order", order}});
  }
}

TEST(CartAllgather, RepeatedOffsetsNeedLocalCopies) {
  // Duplicate vectors: the block is received once and fanned out locally.
  const Neighborhood nb(2, {1, 1, 1, 1, 0, 0, 0, 0, -1, 2, -1, 2});
  check_allgather({3, 3}, kNoPeriods, nb, 3, Algorithm::combining);
}

TEST(CartAllgather, TrailingZeroCoordinates) {
  // Vectors like (1,0): terminate before the last dimension.
  const Neighborhood nb(2, {1, 0, 0, 1, 1, 1, -1, 0, 0, -1});
  check_allgather({3, 3}, kNoPeriods, nb, 2, Algorithm::combining);
}

TEST(CartAllgather, OffsetsWrapSmallTorus) {
  const Neighborhood nb(2, {3, 0, -4, 1, 5, 5, 0, -7});
  check_allgather({3, 2}, kNoPeriods, nb, 4, Algorithm::combining);
}

TEST(CartAllgather, SingleProcessTorus) {
  check_allgather({1, 1}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 2,
                  Algorithm::combining);
}

TEST(CartAllgather, CombiningMatchesTrivial) {
  mpl::run(12, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 4};
    const Neighborhood nb = Neighborhood::stencil(2, 5, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    const int m = 6;
    std::vector<long long> sb(static_cast<std::size_t>(m));
    for (int e = 0; e < m; ++e) sb[static_cast<std::size_t>(e)] =
        world.rank() * 1000LL + e;
    std::vector<long long> r1(static_cast<std::size_t>(t) * m, -1);
    std::vector<long long> r2(static_cast<std::size_t>(t) * m, -2);
    cartcomm::allgather(sb.data(), m, mpl::Datatype::of<long long>(), r1.data(),
                        m, mpl::Datatype::of<long long>(), cc,
                        Algorithm::trivial);
    cartcomm::allgather(sb.data(), m, mpl::Datatype::of<long long>(), r2.data(),
                        m, mpl::Datatype::of<long long>(), cc,
                        Algorithm::combining);
    EXPECT_EQ(r1, r2);
  });
}

TEST(CartAllgatherSchedule, StructureMatchesProposition33) {
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2, 2};
    const Neighborhood nb = Neighborhood::stencil(3, 3, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    std::vector<int> sb(1), rb(static_cast<std::size_t>(t));
    auto op = cartcomm::allgather_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                       rb.data(), 1, mpl::Datatype::of<int>(),
                                       cc, Algorithm::combining);
    const cartcomm::Schedule& s = op.schedule();
    EXPECT_EQ(s.phases(), 3);             // d phases
    EXPECT_EQ(s.rounds(), 6);             // C = d(n-1)
    EXPECT_EQ(s.send_block_count(), 26);  // V = n^d - 1 (tree edges)
    // Every duplicate/zero-vector member is a local copy; here only the
    // zero vector (copied from the send buffer).
    EXPECT_EQ(s.copy_count(), 1);
  });
}

TEST(CartAllgatherSchedule, DimensionOrderChangesVolume) {
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{4, 2, 1};
    const Neighborhood nb(3, {-2, 1, 1, -1, 1, 1, 1, 1, 1, 2, 1, 1});
    std::vector<int> sb(1), rb(4);
    auto cc_good = cartcomm::cart_neighborhood_create(
        world, dims, {}, nb, {}, {{"allgather_order", "increasing_ck"}});
    auto cc_bad = cartcomm::cart_neighborhood_create(
        world, dims, {}, nb, {}, {{"allgather_order", "natural"}});
    auto good = cartcomm::allgather_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                         rb.data(), 1, mpl::Datatype::of<int>(),
                                         cc_good, Algorithm::combining);
    auto bad = cartcomm::allgather_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                        rb.data(), 1, mpl::Datatype::of<int>(),
                                        cc_bad, Algorithm::combining);
    EXPECT_EQ(good.schedule().send_block_count(), 6);   // Figure 2, right tree
    EXPECT_EQ(bad.schedule().send_block_count(), 12);   // Figure 2, left tree
    EXPECT_EQ(good.schedule().rounds(), bad.schedule().rounds());
  });
}

TEST(CartAllgather, AutomaticPicksCombiningForStencils) {
  mpl::run(4, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2};
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {},
                                                 Neighborhood::moore(2));
    std::vector<int> sb(1), rb(9);
    auto op = cartcomm::allgather_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                       rb.data(), 1, mpl::Datatype::of<int>(),
                                       cc, Algorithm::automatic);
    EXPECT_EQ(op.algorithm(), Algorithm::combining);
  });
}

// -- randomized ---------------------------------------------------------------

struct RandomCase {
  unsigned seed;
  int d;
};

class CartAllgatherRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(CartAllgatherRandom, OracleAgreement) {
  const auto [seed, d] = GetParam();
  std::mt19937 rng(seed + 1000);
  std::uniform_int_distribution<int> dim_dist(2, 4);
  std::uniform_int_distribution<int> off_dist(-3, 3);
  std::uniform_int_distribution<int> t_dist(1, 12);
  std::uniform_int_distribution<int> m_dist(1, 5);

  std::vector<int> dims(static_cast<std::size_t>(d));
  for (auto& x : dims) x = dim_dist(rng);
  const int t = t_dist(rng);
  std::vector<int> flat;
  for (int i = 0; i < t * d; ++i) flat.push_back(off_dist(rng));
  const Neighborhood nb(d, std::move(flat));
  const int m = m_dist(rng);

  check_allgather(dims, kNoPeriods, nb, m, Algorithm::combining);
  check_allgather(dims, kNoPeriods, nb, m, Algorithm::trivial);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CartAllgatherRandom,
                         ::testing::Values(RandomCase{1, 2}, RandomCase{2, 2},
                                           RandomCase{3, 2}, RandomCase{4, 3},
                                           RandomCase{5, 3}, RandomCase{6, 3},
                                           RandomCase{7, 4}, RandomCase{8, 4},
                                           RandomCase{9, 1}, RandomCase{10, 1},
                                           RandomCase{11, 5}, RandomCase{12, 5}));
