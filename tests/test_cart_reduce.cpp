// Cartesian neighborhood reduction (the Section 2.2 / Section 5 extension).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"

using cartcomm::Neighborhood;

TEST(CartReduce, SumOverMooreNeighborhood) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const Neighborhood nb = Neighborhood::moore(2);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine[2] = {world.rank(), 1};
    int out[2] = {-1, -1};
    const int blocks = cartcomm::cart_reduce(mine, out, 2, mpl::op::plus{}, cc);
    EXPECT_EQ(blocks, 9);
    // Sum of all source ranks (with multiplicity) and the neighbor count.
    int expect = 0;
    for (int s : cc.source_ranks()) expect += s;
    EXPECT_EQ(out[0], expect);
    EXPECT_EQ(out[1], 9);
  });
}

TEST(CartReduce, MaxExcludesSelfWithoutZeroVector) {
  mpl::run(4, [](mpl::Comm& world) {
    const std::vector<int> dims{4};
    const Neighborhood nb(1, {-1, 1});  // no zero vector
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine = world.rank() * 10;
    int out = -1;
    const int blocks = cartcomm::cart_reduce(&mine, &out, 1, mpl::op::max{}, cc);
    EXPECT_EQ(blocks, 2);
    const int left = (world.rank() + 3) % 4 * 10;
    const int right = (world.rank() + 1) % 4 * 10;
    EXPECT_EQ(out, std::max(left, right));
  });
}

TEST(CartReduce, StencilAverageOnMesh) {
  // 5-point Jacobi-style averaging with PROC_NULL boundaries: boundary
  // processes reduce over fewer contributions.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const std::vector<int> periods{0, 0};
    const Neighborhood nb = Neighborhood::von_neumann(2, true);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
    const double mine = 1.0;
    double sum = 0.0;
    const int blocks =
        cartcomm::cart_reduce(&mine, &sum, 1, mpl::op::plus{}, cc);
    int live = 0;
    for (int s : cc.source_ranks()) live += (s != mpl::PROC_NULL);
    EXPECT_EQ(blocks, live);
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(live));
    // Center of the 3x3 mesh sees all 5 contributions, corners only 3.
    if (world.rank() == 4) {
      EXPECT_EQ(blocks, 5);
    }
    if (world.rank() == 0) {
      EXPECT_EQ(blocks, 3);
    }
  });
}

TEST(CartReduce, CombiningMatchesTrivialOnMoore) {
  mpl::run(12, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 4};
    const Neighborhood nb = Neighborhood::stencil(2, 3, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine[3] = {world.rank(), world.rank() * world.rank(), 1};
    int a[3], b[3];
    const int na = cartcomm::cart_reduce(mine, a, 3, mpl::op::plus{}, cc,
                                         cartcomm::Algorithm::trivial);
    const int nb2 = cartcomm::cart_reduce(mine, b, 3, mpl::op::plus{}, cc,
                                          cartcomm::Algorithm::combining);
    EXPECT_EQ(na, 9);
    EXPECT_EQ(nb2, 9);
    for (int j = 0; j < 3; ++j) EXPECT_EQ(a[j], b[j]);
  });
}

TEST(CartReduce, CombiningAllDimensionOrders) {
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2, 2};
    const Neighborhood nb(3, {-2, 1, 1, -1, 1, 1, 1, 1, 1, 2, 1, 1});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const double mine = world.rank() + 1.5;
    double ref = 0.0;
    cartcomm::cart_reduce(&mine, &ref, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::trivial);
    for (const auto order :
         {cartcomm::DimOrder::natural, cartcomm::DimOrder::increasing_ck,
          cartcomm::DimOrder::decreasing_ck}) {
      double out = 0.0;
      cartcomm::cart_reduce(&mine, &out, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::combining, order);
      EXPECT_DOUBLE_EQ(out, ref);
    }
  });
}

TEST(CartReduce, CombiningHandlesRepetitions) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    // (1,1) twice, plus self twice: multiplicity in both leaf classes.
    const Neighborhood nb(2, {1, 1, 1, 1, 0, 0, 0, 0});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const long long mine = 1 + world.rank();
    long long a = 0, b = 0;
    cartcomm::cart_reduce(&mine, &a, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::trivial);
    cartcomm::cart_reduce(&mine, &b, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::combining);
    EXPECT_EQ(a, b);
  });
}

TEST(CartReduce, CombiningRandomizedAgainstTrivial) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> off(-2, 2);
  for (int trial = 0; trial < 4; ++trial) {
    const int d = 2 + trial % 2;
    const int t = 3 + trial;
    std::vector<int> flat;
    for (int i = 0; i < t * d; ++i) flat.push_back(off(rng));
    const Neighborhood nb(d, std::move(flat));
    const std::vector<int> dims(static_cast<std::size_t>(d), 3);
    const int p = d == 2 ? 9 : 27;
    mpl::run(p, [&](mpl::Comm& world) {
      auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
      const int mine = world.rank() * 7 + 1;
      int a = 0, b = 0;
      cartcomm::cart_reduce(&mine, &a, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::trivial);
      cartcomm::cart_reduce(&mine, &b, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::combining);
      EXPECT_EQ(a, b) << "trial " << trial << " rank " << world.rank();
    });
  }
}

TEST(CartReduce, CombiningRejectsMeshes) {
  EXPECT_THROW(
      mpl::run(4,
               [](mpl::Comm& world) {
                 const std::vector<int> dims{4};
                 const std::vector<int> periods{0};
                 auto cc = cartcomm::cart_neighborhood_create(
                     world, dims, periods, Neighborhood::von_neumann(1));
                 int v = 1, out = 0;
                 cartcomm::cart_reduce(&v, &out, 1, mpl::op::plus{}, cc,
                                       cartcomm::Algorithm::combining);
               }),
      mpl::Error);
}

TEST(CartReduce, AutomaticPrefersCombiningOnTorus) {
  // No direct introspection for the chosen path; verify automatic gives
  // trivially-correct results on a case where combining is selected.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {},
                                                 Neighborhood::moore(2));
    const int mine = 2;
    int out = 0;
    const int blocks = cartcomm::cart_reduce(&mine, &out, 1, mpl::op::plus{}, cc);
    EXPECT_EQ(blocks, 9);
    EXPECT_EQ(out, 18);
  });
}

TEST(CartReduce, EmptyNeighborhoodZeroFills) {
  mpl::run(2, [](mpl::Comm& world) {
    const std::vector<int> dims{2};
    const Neighborhood nb(1, std::vector<int>{});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    double out = 42.0;
    EXPECT_EQ(cartcomm::cart_reduce(&out, &out, 0, mpl::op::plus{}, cc), 0);
    int iout = 7;
    const int mine = 3;
    EXPECT_EQ(cartcomm::cart_reduce(&mine, &iout, 1, mpl::op::plus{}, cc), 0);
    EXPECT_EQ(iout, 0);  // zero-filled
  });
}
