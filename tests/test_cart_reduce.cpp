// Cartesian neighborhood reduction (the Section 2.2 / Section 5 extension).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "cart_test_util.hpp"
#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"
#include "telemetry/telemetry.hpp"

using cartcomm::Neighborhood;

TEST(CartReduce, SumOverMooreNeighborhood) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const Neighborhood nb = Neighborhood::moore(2);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine[2] = {world.rank(), 1};
    int out[2] = {-1, -1};
    const int blocks = cartcomm::cart_reduce(mine, out, 2, mpl::op::plus{}, cc);
    EXPECT_EQ(blocks, 9);
    // Sum of all source ranks (with multiplicity) and the neighbor count.
    int expect = 0;
    for (int s : cc.source_ranks()) expect += s;
    EXPECT_EQ(out[0], expect);
    EXPECT_EQ(out[1], 9);
  });
}

TEST(CartReduce, MaxExcludesSelfWithoutZeroVector) {
  mpl::run(4, [](mpl::Comm& world) {
    const std::vector<int> dims{4};
    const Neighborhood nb(1, {-1, 1});  // no zero vector
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine = world.rank() * 10;
    int out = -1;
    const int blocks = cartcomm::cart_reduce(&mine, &out, 1, mpl::op::max{}, cc);
    EXPECT_EQ(blocks, 2);
    const int left = (world.rank() + 3) % 4 * 10;
    const int right = (world.rank() + 1) % 4 * 10;
    EXPECT_EQ(out, std::max(left, right));
  });
}

TEST(CartReduce, StencilAverageOnMesh) {
  // 5-point Jacobi-style averaging with PROC_NULL boundaries: boundary
  // processes reduce over fewer contributions.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const std::vector<int> periods{0, 0};
    const Neighborhood nb = Neighborhood::von_neumann(2, true);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
    const double mine = 1.0;
    double sum = 0.0;
    const int blocks =
        cartcomm::cart_reduce(&mine, &sum, 1, mpl::op::plus{}, cc);
    int live = 0;
    for (int s : cc.source_ranks()) live += (s != mpl::PROC_NULL);
    EXPECT_EQ(blocks, live);
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(live));
    // Center of the 3x3 mesh sees all 5 contributions, corners only 3.
    if (world.rank() == 4) {
      EXPECT_EQ(blocks, 5);
    }
    if (world.rank() == 0) {
      EXPECT_EQ(blocks, 3);
    }
  });
}

TEST(CartReduce, CombiningMatchesTrivialOnMoore) {
  mpl::run(12, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 4};
    const Neighborhood nb = Neighborhood::stencil(2, 3, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine[3] = {world.rank(), world.rank() * world.rank(), 1};
    int a[3], b[3];
    const int na = cartcomm::cart_reduce(mine, a, 3, mpl::op::plus{}, cc,
                                         cartcomm::Algorithm::trivial);
    const int nb2 = cartcomm::cart_reduce(mine, b, 3, mpl::op::plus{}, cc,
                                          cartcomm::Algorithm::combining);
    EXPECT_EQ(na, 9);
    EXPECT_EQ(nb2, 9);
    for (int j = 0; j < 3; ++j) EXPECT_EQ(a[j], b[j]);
  });
}

TEST(CartReduce, CombiningAllDimensionOrders) {
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2, 2};
    const Neighborhood nb(3, {-2, 1, 1, -1, 1, 1, 1, 1, 1, 2, 1, 1});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const double mine = world.rank() + 1.5;
    double ref = 0.0;
    cartcomm::cart_reduce(&mine, &ref, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::trivial);
    for (const auto order :
         {cartcomm::DimOrder::natural, cartcomm::DimOrder::increasing_ck,
          cartcomm::DimOrder::decreasing_ck}) {
      double out = 0.0;
      cartcomm::cart_reduce(&mine, &out, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::combining, order);
      EXPECT_DOUBLE_EQ(out, ref);
    }
  });
}

TEST(CartReduce, CombiningHandlesRepetitions) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    // (1,1) twice, plus self twice: multiplicity in both leaf classes.
    const Neighborhood nb(2, {1, 1, 1, 1, 0, 0, 0, 0});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const long long mine = 1 + world.rank();
    long long a = 0, b = 0;
    cartcomm::cart_reduce(&mine, &a, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::trivial);
    cartcomm::cart_reduce(&mine, &b, 1, mpl::op::plus{}, cc,
                          cartcomm::Algorithm::combining);
    EXPECT_EQ(a, b);
  });
}

TEST(CartReduce, CombiningRandomizedAgainstTrivial) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> off(-2, 2);
  for (int trial = 0; trial < 4; ++trial) {
    const int d = 2 + trial % 2;
    const int t = 3 + trial;
    std::vector<int> flat;
    for (int i = 0; i < t * d; ++i) flat.push_back(off(rng));
    const Neighborhood nb(d, std::move(flat));
    const std::vector<int> dims(static_cast<std::size_t>(d), 3);
    const int p = d == 2 ? 9 : 27;
    mpl::run(p, [&](mpl::Comm& world) {
      auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
      const int mine = world.rank() * 7 + 1;
      int a = 0, b = 0;
      cartcomm::cart_reduce(&mine, &a, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::trivial);
      cartcomm::cart_reduce(&mine, &b, 1, mpl::op::plus{}, cc,
                            cartcomm::Algorithm::combining);
      EXPECT_EQ(a, b) << "trial " << trial << " rank " << world.rank();
    });
  }
}

TEST(CartReduce, CombiningMatchesTrivialOnMesh) {
  // The combining schedule now handles mesh boundaries: partial aggregates
  // shrink consistently where the forwarding chain leaves the mesh. Every
  // position class (corner, edge, interior) must agree with the trivial
  // algorithm, on a pure mesh and on mixed periodicity.
  for (const std::vector<int>& periods :
       {std::vector<int>{0, 0}, std::vector<int>{1, 0}, std::vector<int>{0, 1}}) {
    mpl::run(12, [&](mpl::Comm& world) {
      const std::vector<int> dims{3, 4};
      const Neighborhood nb = Neighborhood::moore(2);
      auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
      const long long mine[2] = {world.rank() * 131 + 7, 1};
      long long a[2] = {-1, -1}, b[2] = {-1, -1};
      const int na = cartcomm::cart_reduce(mine, a, 2, mpl::op::plus{}, cc,
                                           cartcomm::Algorithm::trivial);
      const int nc = cartcomm::cart_reduce(mine, b, 2, mpl::op::plus{}, cc,
                                           cartcomm::Algorithm::combining);
      EXPECT_EQ(na, nc);
      EXPECT_EQ(a[0], b[0]) << "rank " << world.rank();
      EXPECT_EQ(a[1], b[1]) << "rank " << world.rank();
      // a[1] counts the live contributions directly.
      EXPECT_EQ(a[1], na) << "rank " << world.rank();
    });
  }
}

TEST(CartReduce, CombiningRejectsNonCommutativeOps) {
  // The combining algorithm reassociates and reorders contributions;
  // explicitly requesting it with a non-commutative op must throw, and
  // `automatic` must fall back to the trivial fixed-order algorithm.
  EXPECT_THROW(
      mpl::run(4,
               [](mpl::Comm& world) {
                 const std::vector<int> dims{4};
                 auto cc = cartcomm::cart_neighborhood_create(
                     world, dims, {}, Neighborhood::von_neumann(1));
                 const mpl::ReduceOp op = mpl::ReduceOp::make<int>(
                     "second", [](int, int b) { return b; },
                     /*commutative=*/false, 0);
                 int v = 1, out = 0;
                 cartcomm::cart_neighbor_reduce(&v, &out, 1,
                                                mpl::Datatype::of<int>(), op,
                                                cc, cartcomm::Algorithm::combining);
               }),
      mpl::Error);
}

TEST(CartReduce, MinMaxIdentityWhenAllSourcesOffMesh) {
  // Regression: the old implementation zero-filled the result when a
  // process had no valid contributions, which is wrong for min/max (and
  // any op whose identity is not 0). A one-sided neighborhood on a mesh
  // leaves the boundary process with zero on-mesh sources.
  mpl::run(2, [](mpl::Comm& world) {
    const std::vector<int> dims{2};
    const std::vector<int> periods{0};
    const Neighborhood nb(1, {1});  // source at -1: off-mesh for rank 0
    auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
    const int mine = -5 - world.rank();
    int mx = 123, mn = 123;
    const int bx = cartcomm::cart_reduce(&mine, &mx, 1, mpl::op::max{}, cc);
    const int bn = cartcomm::cart_reduce(&mine, &mn, 1, mpl::op::min{}, cc);
    if (world.rank() == 0) {
      EXPECT_EQ(bx, 0);
      EXPECT_EQ(mx, std::numeric_limits<int>::lowest());
      EXPECT_EQ(bn, 0);
      EXPECT_EQ(mn, std::numeric_limits<int>::max());
    } else {
      EXPECT_EQ(bx, 1);
      EXPECT_EQ(mx, -5);  // rank 0's value; all values negative
      EXPECT_EQ(mn, -5);
    }
  });
}

TEST(CartReduce, AllreduceIncludesSelfExactlyOnce) {
  mpl::run(4, [](mpl::Comm& world) {
    const std::vector<int> dims{4};
    const Neighborhood nb(1, {-1, 1});  // no zero vector
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int mine = world.rank() * 10 + 1;
    int out = -1;
    const int blocks = cartcomm::cart_neighbor_allreduce(
        &mine, &out, 1, mpl::Datatype::of<int>(), mpl::ReduceOp::sum<int>(),
        cc);
    EXPECT_EQ(blocks, 3);  // left, right, self
    const int left = (world.rank() + 3) % 4 * 10 + 1;
    const int right = (world.rank() + 1) % 4 * 10 + 1;
    EXPECT_EQ(out, left + right + mine);
    // A neighborhood already containing the zero vector is unchanged:
    // allreduce == reduce.
    const Neighborhood nbz(1, {-1, 0, 1});
    auto ccz = cartcomm::cart_neighborhood_create(world, dims, {}, nbz);
    int out2 = -1;
    const int blocks2 = cartcomm::cart_neighbor_allreduce(
        &mine, &out2, 1, mpl::Datatype::of<int>(), mpl::ReduceOp::sum<int>(),
        ccz);
    EXPECT_EQ(blocks2, 3);
    EXPECT_EQ(out2, out);
  });
}

TEST(CartReduce, ReduceScatterBlockMatchesOracle) {
  // Block i of the send buffer is addressed to the target at N[i]; each
  // process receives the op over the blocks addressed to it. Checked on a
  // mesh (boundary processes see fewer contributions) for both algorithms.
  for (const auto alg :
       {cartcomm::Algorithm::trivial, cartcomm::Algorithm::combining}) {
    mpl::run(9, [&](mpl::Comm& world) {
      const std::vector<int> dims{3, 3};
      const std::vector<int> periods{0, 0};
      const Neighborhood nb = Neighborhood::von_neumann(2, true);
      auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
      const int t = nb.count();
      const int m = 3;
      std::vector<int> sendbuf(static_cast<std::size_t>(t) * m);
      for (int i = 0; i < t; ++i)
        for (int e = 0; e < m; ++e)
          sendbuf[static_cast<std::size_t>(i) * m + e] =
              carttest::pattern(world.rank(), i, e);
      std::vector<int> out(static_cast<std::size_t>(m), -777);
      const int blocks = cartcomm::cart_reduce_scatter_block(
          sendbuf.data(), out.data(), m, mpl::Datatype::of<int>(),
          mpl::ReduceOp::sum<int>(), cc, alg);
      // Oracle: contribution i arrives from the source at -N[i] when that
      // process exists; it sent pattern(src, i, e).
      int live = 0;
      std::vector<int> expect(static_cast<std::size_t>(m), 0);
      for (int i = 0; i < t; ++i) {
        const int src = cc.source_ranks()[static_cast<std::size_t>(i)];
        if (src == mpl::PROC_NULL) continue;
        ++live;
        for (int e = 0; e < m; ++e)
          expect[static_cast<std::size_t>(e)] += carttest::pattern(src, i, e);
      }
      EXPECT_EQ(blocks, live);
      for (int e = 0; e < m; ++e)
        EXPECT_EQ(out[static_cast<std::size_t>(e)],
                  expect[static_cast<std::size_t>(e)])
            << "rank " << world.rank() << " elem " << e;
    });
  }
}

TEST(CartReduce, PersistentVariantsExecuteRepeatedly) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const Neighborhood nb = Neighborhood::moore(2);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    int mine = 0;
    int out = -1;
    auto op = cartcomm::cart_neighbor_reduce_init(
        &mine, &out, 1, mpl::Datatype::of<int>(), mpl::ReduceOp::sum<int>(),
        cc);
    // The reducing trivial algorithm is schedule-native too, so the
    // schedule accessor is valid for every resolved algorithm.
    EXPECT_GT(op.schedule().rounds(), 0);
    for (int rep = 0; rep < 3; ++rep) {
      mine = world.rank() + rep;
      out = -1;
      op.execute();
      int expect = 0;
      for (int s : cc.source_ranks()) expect += s + rep;
      EXPECT_EQ(out, expect) << "rep " << rep;
    }
    // Non-blocking persistent execution.
    mine = world.rank() + 100;
    out = -1;
    auto req = op.start();
    req.wait();
    int expect = 0;
    for (int s : cc.source_ranks()) expect += s + 100;
    EXPECT_EQ(out, expect);

    // Persistent allreduce and reduce_scatter.
    const Neighborhood nb2(2, {-1, 0, 1, 0});
    auto cc2 = cartcomm::cart_neighborhood_create(world, dims, {}, nb2);
    double dv = 0.0, dout = -1.0;
    auto ar = cartcomm::cart_neighbor_allreduce_init(
        &dv, &dout, 1, mpl::Datatype::of<double>(),
        mpl::ReduceOp::sum<double>(), cc2);
    dv = world.rank() + 0.25;
    ar.execute();
    double expect2 = dv;
    for (int s : cc2.source_ranks()) expect2 += s + 0.25;
    EXPECT_DOUBLE_EQ(dout, expect2);

    const int t2 = nb2.count();
    std::vector<int> sb(static_cast<std::size_t>(t2));
    for (int i = 0; i < t2; ++i)
      sb[static_cast<std::size_t>(i)] = carttest::pattern(world.rank(), i, 0);
    int sout = -1;
    auto rs = cartcomm::cart_reduce_scatter_block_init(
        sb.data(), &sout, 1, mpl::Datatype::of<int>(),
        mpl::ReduceOp::sum<int>(), cc2);
    rs.execute();
    int sexpect = 0;
    for (int i = 0; i < t2; ++i) {
      const int src = cc2.source_ranks()[static_cast<std::size_t>(i)];
      sexpect += carttest::pattern(src, i, 0);
    }
    EXPECT_EQ(sout, sexpect);
  });
}

TEST(CartReduce, UserOpAndFloatConsistency) {
  // A user-defined commutative op through the combining schedule, and
  // bit-identical float results across repeated runs (compile-order
  // folding makes the combine order a pure function of the tree).
  std::vector<double> first(9), second(9);
  auto run_once = [&](std::vector<double>& out) {
    mpl::run(9, [&](mpl::Comm& world) {
      const std::vector<int> dims{3, 3};
      const Neighborhood nb = Neighborhood::moore(2);
      auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
      const double mine = 1.0 / (world.rank() + 3.0);
      double r = 0.0;
      const mpl::ReduceOp op = mpl::ReduceOp::make<double>(
          "sum2", [](double a, double b) { return a + b; },
          /*commutative=*/true, 0.0);
      cartcomm::cart_neighbor_reduce(&mine, &r, 1, mpl::Datatype::of<double>(),
                                     op, cc, cartcomm::Algorithm::combining);
      out[static_cast<std::size_t>(world.rank())] = r;
    });
  };
  run_once(first);
  run_once(second);
  for (int r = 0; r < 9; ++r) {
    // Bitwise equality, not EXPECT_DOUBLE_EQ: determinism is the claim.
    EXPECT_EQ(std::memcmp(&first[static_cast<std::size_t>(r)],
                          &second[static_cast<std::size_t>(r)],
                          sizeof(double)),
              0)
        << "rank " << r;
  }
}

TEST(CartReduce, AutomaticPrefersCombiningOnTorus) {
  // No direct introspection for the chosen path; verify automatic gives
  // trivially-correct results on a case where combining is selected.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {},
                                                 Neighborhood::moore(2));
    const int mine = 2;
    int out = 0;
    const int blocks = cartcomm::cart_reduce(&mine, &out, 1, mpl::op::plus{}, cc);
    EXPECT_EQ(blocks, 9);
    EXPECT_EQ(out, 18);
  });
}

TEST(CartReduce, CombiningVolumeMatchesTreeAndBeatsTrivial) {
  // The combine-on-the-fly unpack keeps the per-hop payload at one block
  // per tree node, so the per-process volume equals the allgather tree's
  // (#edges) instead of one block per neighbor. A neighborhood with
  // repeated offsets shares tree nodes: (1,1) x3 builds a 2-edge chain, so
  // combining moves 2 blocks where the trivial algorithm moves 3. Asserted
  // through the production telemetry byte counters.
  mpl::RunOptions opts;
  opts.telemetry.enabled = true;
  const int m = 4;
  std::vector<std::uint64_t> reduce_b(9), trivial_b(9), allgather_b(9);
  std::vector<std::uint64_t> folds(9), reduces(9);
  mpl::run(
      9,
      [&](mpl::Comm& world) {
        const std::vector<int> dims{3, 3};
        const Neighborhood nb(2, {1, 1, 1, 1, 1, 1});
        auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
        const std::size_t r = static_cast<std::size_t>(world.rank());
        std::vector<int> mine(m, world.rank() + 1);
        std::vector<int> out(m, -1);
        const telemetry::RankTelemetry* tm = world.telemetry();
        ASSERT_NE(tm, nullptr);
        const std::uint64_t b0 = tm->bytes_sent();
        cartcomm::cart_reduce(mine.data(), out.data(), m, mpl::op::plus{}, cc,
                              cartcomm::Algorithm::combining);
        const std::uint64_t b1 = tm->bytes_sent();
        cartcomm::cart_reduce(mine.data(), out.data(), m, mpl::op::plus{}, cc,
                              cartcomm::Algorithm::trivial);
        const std::uint64_t b2 = tm->bytes_sent();
        const int t = nb.count();
        std::vector<int> ag(static_cast<std::size_t>(t) * m, 0);
        cartcomm::allgather(mine.data(), m, mpl::Datatype::of<int>(), ag.data(),
                            m, mpl::Datatype::of<int>(), cc,
                            cartcomm::Algorithm::combining);
        const std::uint64_t b3 = tm->bytes_sent();
        reduce_b[r] = b1 - b0;
        trivial_b[r] = b2 - b1;
        allgather_b[r] = b3 - b2;
        folds[r] = tm->reduce_folds();
        reduces[r] = tm->reduces();
      },
      opts);
  for (int r = 0; r < 9; ++r) {
    const std::size_t ur = static_cast<std::size_t>(r);
    // 2 tree edges x 16 B vs 3 neighbor blocks x 16 B.
    EXPECT_EQ(reduce_b[ur], 2u * m * sizeof(int)) << "rank " << r;
    EXPECT_EQ(trivial_b[ur], 3u * m * sizeof(int)) << "rank " << r;
    // Identical tree, identical movement: V -> t shrinkage means the
    // reducing schedule never moves more than the movement schedule.
    EXPECT_EQ(reduce_b[ur], allgather_b[ur]) << "rank " << r;
    EXPECT_LT(reduce_b[ur], trivial_b[ur]) << "rank " << r;
    // Fold and execution counters flowed into the telemetry block.
    EXPECT_GT(folds[ur], 0u) << "rank " << r;
    EXPECT_EQ(reduces[ur], 2u) << "rank " << r;  // both reducing executions
  }
}

TEST(CartReduce, DeterministicUnderFaultInjection) {
  // Same fault seed => bit-identical virtual clocks and bit-identical
  // float results: drops and jitter reorder message arrivals, but the fold
  // program is applied in compile order, never arrival order.
  mpl::RunOptions opts;
  opts.net = mpl::NetConfig::omnipath();
  opts.faults =
      mpl::FaultConfig::parse("seed=11,drop=0.05,delay=1e-6,delay_prob=0.5");
  std::vector<double> clocks1(9), clocks2(9), res1(9), res2(9);
  auto run_once = [&](std::vector<double>& clocks, std::vector<double>& res) {
    mpl::run(
        9,
        [&](mpl::Comm& world) {
          const std::vector<int> dims{3, 3};
          const Neighborhood nb = Neighborhood::moore(2);
          auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
          const double mine = 0.1 * (world.rank() + 1);
          double r = 0.0;
          for (int rep = 0; rep < 3; ++rep) {
            cartcomm::cart_reduce(&mine, &r, 1, mpl::op::plus{}, cc,
                                  cartcomm::Algorithm::combining);
          }
          res[static_cast<std::size_t>(world.rank())] = r;
          clocks[static_cast<std::size_t>(world.rank())] = world.vclock();
        },
        opts);
  };
  run_once(clocks1, res1);
  run_once(clocks2, res2);
  for (int r = 0; r < 9; ++r) {
    const std::size_t ur = static_cast<std::size_t>(r);
    EXPECT_EQ(std::memcmp(&clocks1[ur], &clocks2[ur], sizeof(double)), 0)
        << "rank " << r;
    EXPECT_EQ(std::memcmp(&res1[ur], &res2[ur], sizeof(double)), 0)
        << "rank " << r;
  }
}

TEST(CartReduce, EmptyNeighborhoodZeroFills) {
  mpl::run(2, [](mpl::Comm& world) {
    const std::vector<int> dims{2};
    const Neighborhood nb(1, std::vector<int>{});
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    double out = 42.0;
    EXPECT_EQ(cartcomm::cart_reduce(&out, &out, 0, mpl::op::plus{}, cc), 0);
    int iout = 7;
    const int mine = 3;
    EXPECT_EQ(cartcomm::cart_reduce(&mine, &iout, 1, mpl::op::plus{}, cc), 0);
    EXPECT_EQ(iout, 0);  // zero-filled
  });
}
