// Production-telemetry layer: log-linear histogram bucket math and
// single-writer/concurrent-reader discipline, lock-contention probe
// counters (direct two-thread contention and a real two-rank mailbox
// workload), flight-recorder ring semantics and its appearance in
// watchdog stall reports, the OpenMetrics exporter, Comm::telemetry()
// counters, and the lock-level name cross-check against checked.hpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cart_test_util.hpp"
#include "mpl/checked.hpp"
#include "telemetry/contention.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/openmetrics.hpp"
#include "telemetry/telemetry.hpp"

using telemetry::FlightKind;
using telemetry::FlightRecorder;
using telemetry::Histogram;

namespace {

/// Telemetry tests configure everything programmatically; scrub the env
/// knobs that would overlay RunOptions (the ctest harness exports
/// MPL_TIMEOUT_MS, and a matrix job may export the telemetry ones).
class TelemetryRun : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("MPL_TELEMETRY");
    unsetenv("MPL_OPENMETRICS");
    unsetenv("MPL_OPENMETRICS_PERIOD_MS");
    unsetenv("MPL_FAULTS");
    unsetenv("MPL_TIMEOUT_MS");
  }
};

using TelemetryStall = TelemetryRun;
using TelemetryExport = TelemetryRun;

const mpl::Datatype kInt = mpl::Datatype::of<int>();

}  // namespace

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, SmallValuesAreExactBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
}

TEST(TelemetryHistogram, BucketBoundaries) {
  // First bucket of the first split octave: values 8..8 (stride 1).
  EXPECT_EQ(Histogram::bucket_index(8), 8u);
  EXPECT_EQ(Histogram::bucket_upper(8), 8u);
  EXPECT_EQ(Histogram::bucket_index(15), 15u);
  EXPECT_EQ(Histogram::bucket_upper(15), 15u);
  // Octave [16,32): stride 2, so 16 and 17 share a bucket.
  EXPECT_EQ(Histogram::bucket_index(16), Histogram::bucket_index(17));
  EXPECT_EQ(Histogram::bucket_upper(Histogram::bucket_index(16)), 17u);
  EXPECT_NE(Histogram::bucket_index(17), Histogram::bucket_index(18));

  // Every value lands in a bucket whose range contains it, and indices
  // are monotone in the value.
  std::vector<std::uint64_t> probes;
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    probes.push_back(p);
    probes.push_back(p - 1);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : probes) {
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBuckets) << v;
    EXPECT_LE(v, Histogram::bucket_upper(i)) << v;
    if (i > 0) EXPECT_GT(v, Histogram::bucket_upper(i - 1)) << v;
  }
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_GT(Histogram::bucket_upper(i), Histogram::bucket_upper(i - 1));
  }
}

TEST(TelemetryHistogram, OverflowBucketCatchesMax) {
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Histogram::bucket_index(top), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBuckets - 1), top);
  Histogram h;
  h.record(top);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.max(), top);
}

TEST(TelemetryHistogram, RecordAggregatesAndQuantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-linear quantization error is bounded by 2^-kSubBits = 12.5%.
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 563u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(TelemetryHistogram, MergeIsDeterministicAcrossThreadInterleavings) {
  // Each rank thread records into its own histogram (the runtime's
  // single-writer discipline); the merged result must be bucket-for-bucket
  // identical to a serial reference regardless of scheduling.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  const auto value = [](int t, int i) {
    return static_cast<std::uint64_t>((t * 977 + i * 31) % 100000 + 1);
  };

  Histogram reference;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) reference.record(value(t, i));
  }

  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Histogram> per_thread(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&per_thread, t, value] {
        for (int i = 0; i < kPerThread; ++i) {
          per_thread[static_cast<std::size_t>(t)].record(value(t, i));
        }
      });
    }
    for (auto& th : threads) th.join();
    Histogram merged;
    for (const Histogram& h : per_thread) merged.merge(h);
    ASSERT_EQ(merged.count(), reference.count());
    ASSERT_EQ(merged.sum(), reference.sum());
    ASSERT_EQ(merged.min(), reference.min());
    ASSERT_EQ(merged.max(), reference.max());
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      ASSERT_EQ(merged.bucket_count(i), reference.bucket_count(i)) << i;
    }
  }
}

TEST(TelemetryHistogram, ConcurrentReadersSeeConsistentSnapshots) {
  // One writer, concurrent readers (the exporter's periodic-snapshot
  // pattern): readers must never observe count() exceeding what the
  // writer has published, and the test must be data-race free under TSan.
  Histogram h;
  constexpr std::uint64_t kWrites = 200000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t c = h.count();
      EXPECT_LE(c, kWrites);
      std::uint64_t from_buckets = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        from_buckets += h.bucket_count(i);
      }
      EXPECT_LE(from_buckets, kWrites);
    }
  });
  for (std::uint64_t v = 0; v < kWrites; ++v) h.record(v % 4096);
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(h.count(), kWrites);
}

// ---------------------------------------------------------------------------
// Lock-contention probes
// ---------------------------------------------------------------------------

TEST(TelemetryContention, LevelNamesMatchCheckedHpp) {
  using mpl::detail::LockLevel;
  const std::pair<LockLevel, const char*> expected[] = {
      {LockLevel::comm_registry, "comm_registry"},
      {LockLevel::oob_barrier, "oob_barrier"},
      {LockLevel::mailbox, "mailbox"},
      {LockLevel::buffer_pool, "buffer_pool"},
      {LockLevel::stall_info, "stall_info"},
      {LockLevel::error_capture, "error_capture"},
  };
  for (const auto& [level, name] : expected) {
    EXPECT_STREQ(telemetry::lock_level_name(static_cast<int>(level)), name);
#ifdef MPL_CHECKED
    // The authoritative table is LockTracker::name(); the telemetry copy
    // (kept separate to avoid a circular include) must never drift.
    EXPECT_STREQ(telemetry::lock_level_name(static_cast<int>(level)),
                 mpl::detail::LockTracker::name(level));
#endif
  }
  EXPECT_STREQ(telemetry::lock_level_name(0), "?");
  EXPECT_STREQ(telemetry::lock_level_name(99), "?");
}

TEST(TelemetryContention, DisarmedProbeCountsNothing) {
  telemetry::contention_arm(false);
  telemetry::contention_reset();
  mpl::detail::MailboxMutex mtx;
  mtx.lock();
  mtx.unlock();
  const telemetry::ContentionTotals t = telemetry::contention_totals();
  const int lvl = static_cast<int>(mpl::detail::LockLevel::mailbox);
  EXPECT_EQ(t.acquisitions[lvl], 0u);
}

TEST(TelemetryContention, TwoThreadContentionIsCountedWithBlockedTime) {
  telemetry::contention_arm(true);  // resets totals
  mpl::detail::MailboxMutex mtx;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    mtx.lock();
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    mtx.unlock();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  mtx.lock();  // must block: the holder sleeps with the lock held
  mtx.unlock();
  holder.join();
  telemetry::contention_arm(false);  // disarm leaves totals readable

  const telemetry::ContentionTotals t = telemetry::contention_totals();
  const int lvl = static_cast<int>(mpl::detail::LockLevel::mailbox);
  EXPECT_GE(t.acquisitions[lvl], 2u);
  EXPECT_GE(t.contended[lvl], 1u);
  // The contender slept most of the holder's 60 ms nap inside lock().
  EXPECT_GT(t.blocked_ns[lvl], 1000000u);  // > 1 ms
}

TEST(TelemetryContention, TryLockCountsUncontendedAcquisition) {
  telemetry::contention_arm(true);
  mpl::detail::BufferPoolMutex mtx;
  ASSERT_TRUE(mtx.try_lock());
  mtx.unlock();
  telemetry::contention_arm(false);
  const telemetry::ContentionTotals t = telemetry::contention_totals();
  const int lvl = static_cast<int>(mpl::detail::LockLevel::buffer_pool);
  EXPECT_GE(t.acquisitions[lvl], 1u);
  EXPECT_EQ(t.contended[lvl], 0u);
}

TEST_F(TelemetryRun, MailboxWorkloadRecordsContention) {
  mpl::RunOptions opts;
  opts.telemetry.enabled = true;  // run() arms the probes
  mpl::run(2, [](mpl::Comm& world) {
    std::vector<int> buf(16, world.rank());
    const int peer = 1 - world.rank();
    for (int i = 0; i < 2000; ++i) {
      if (world.rank() == 0) {
        world.send(buf.data(), 16, kInt, peer, 5);
        world.recv(buf.data(), 16, kInt, peer, 5);
      } else {
        world.recv(buf.data(), 16, kInt, peer, 5);
        world.send(buf.data(), 16, kInt, peer, 5);
      }
    }
  }, opts);
  const telemetry::ContentionTotals t = telemetry::contention_totals();
  const int mailbox = static_cast<int>(mpl::detail::LockLevel::mailbox);
  const int pool = static_cast<int>(mpl::detail::LockLevel::buffer_pool);
  // Every delivery takes the receiver's mailbox lock and the sender's
  // pool lock; 2000 round trips cannot fail to register.
  EXPECT_GT(t.acquisitions[mailbox], 1000u);
  EXPECT_GT(t.acquisitions[pool], 1000u);
  EXPECT_FALSE(telemetry::contention_enabled()) << "run() must disarm";
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(TelemetryFlight, RingWrapsKeepingNewestEvents) {
  FlightRecorder fr;
  for (int i = 0; i < 100; ++i) {
    fr.record(FlightKind::round, 0, i);
  }
  EXPECT_EQ(fr.recorded(), 100u);
  std::ostringstream os;
  fr.dump(os);
  const std::string d = os.str();
  EXPECT_NE(d.find("(36 older dropped)"), std::string::npos) << d;
  EXPECT_NE(d.find("round(0,99)"), std::string::npos) << d;
  EXPECT_NE(d.find("round(0,36)"), std::string::npos) << d;
  EXPECT_EQ(d.find("round(0,35)"), std::string::npos) << d;
}

TEST(TelemetryFlight, DumpElidesAbsentPayloadsAndNamesKinds) {
  FlightRecorder fr;
  std::ostringstream empty;
  fr.dump(empty);
  EXPECT_EQ(empty.str(), "(no events)");

  fr.record(FlightKind::pool_miss);          // no payload
  fr.record(FlightKind::retry, 2, 1);        // both payloads
  fr.record(FlightKind::wait_block, 1);      // one payload
  fr.record(FlightKind::wait_timeout);
  std::ostringstream os;
  fr.dump(os);
  const std::string d = os.str();
  EXPECT_NE(d.find("pool_miss "), std::string::npos) << d;
  EXPECT_EQ(d.find("pool_miss("), std::string::npos) << d;
  EXPECT_NE(d.find("retry(2,1)"), std::string::npos) << d;
  EXPECT_NE(d.find("wait_block(1)"), std::string::npos) << d;
  EXPECT_NE(d.find("wait_timeout"), std::string::npos) << d;
}

TEST_F(TelemetryStall, StallReportCarriesFlightTimelineForEveryRank) {
  mpl::RunOptions opts;
  opts.faults.watchdog_ms = 300;
  try {
    mpl::run(
        4,
        [](mpl::Comm& world) {
          const cartcomm::Neighborhood nb =
              cartcomm::Neighborhood::von_neumann(2);
          const std::vector<int> dims{2, 2};
          auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
          if (world.rank() == 0) return;  // wedge the collective
          const int t = nb.count();
          std::vector<int> sb(static_cast<std::size_t>(t), world.rank());
          std::vector<int> rb(static_cast<std::size_t>(t), -1);
          cartcomm::alltoall(sb.data(), 1, kInt, rb.data(), 1, kInt, cc,
                             cartcomm::Algorithm::combining);
        },
        opts);
    FAIL() << "expected mpl::TimeoutError from the watchdog";
  } catch (const mpl::TimeoutError& e) {
    const std::string dump = e.pending_dump();
    const std::size_t flight = dump.find("flight recorder");
    ASSERT_NE(flight, std::string::npos) << dump;
    // Every rank gets a timeline line — including rank 0, which exited.
    for (int r = 0; r < 4; ++r) {
      EXPECT_NE(dump.find("rank " + std::to_string(r) + ": ", flight),
                std::string::npos)
          << "no flight line for rank " << r << "\n" << dump;
    }
    // The wedged ranks entered the schedule executor and then parked:
    // their timelines show the schedule start and the blocking wait.
    EXPECT_NE(dump.find("sched_begin", flight), std::string::npos) << dump;
    EXPECT_NE(dump.find("phase_begin", flight), std::string::npos) << dump;
    EXPECT_NE(dump.find("wait_block", flight), std::string::npos) << dump;
  }
}

TEST_F(TelemetryStall, TimeoutErrorCarriesFlightTimeline) {
  mpl::RunOptions opts;
  opts.faults.timeout_ms = 250;
  try {
    mpl::run(
        2,
        [](mpl::Comm& world) {
          if (world.rank() == 0) {
            int v = -1;
            world.recv(&v, 1, kInt, 1, 9);  // never sent
          }
        },
        opts);
    FAIL() << "expected mpl::TimeoutError";
  } catch (const mpl::TimeoutError& e) {
    const std::string dump = e.pending_dump();
    const std::size_t flight = dump.find("flight recorder");
    ASSERT_NE(flight, std::string::npos) << dump;
    // The timed-out rank recorded its park and then the terminal timeout.
    EXPECT_NE(dump.find("wait_block", flight), std::string::npos) << dump;
    EXPECT_NE(dump.find("wait_timeout", flight), std::string::npos) << dump;
  }
}

// ---------------------------------------------------------------------------
// RankTelemetry counters via Comm::telemetry()
// ---------------------------------------------------------------------------

TEST_F(TelemetryRun, TelemetryNullWhenNotArmed) {
  mpl::run(1, [](mpl::Comm& world) {
    EXPECT_EQ(world.telemetry(), nullptr);
  });
}

TEST_F(TelemetryRun, CountersTrackTrafficAndWaits) {
  mpl::RunOptions opts;
  opts.telemetry.enabled = true;
  mpl::run(2, [](mpl::Comm& world) {
    const telemetry::RankTelemetry* tm = world.telemetry();
    ASSERT_NE(tm, nullptr);
    std::vector<int> buf(16, world.rank());
    if (world.rank() == 0) {
      // Park the receiver for a measurable while before sending.
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      for (int i = 0; i < 5; ++i) world.send(buf.data(), 16, kInt, 1, 3);
      EXPECT_EQ(tm->msgs_sent(), 5u);
      EXPECT_EQ(tm->bytes_sent(), 5u * 16u * sizeof(int));
      EXPECT_EQ(tm->message_sizes().count(), 5u);
      EXPECT_EQ(tm->message_sizes().max(), 16u * sizeof(int));
    } else {
      for (int i = 0; i < 5; ++i) world.recv(buf.data(), 16, kInt, 0, 3);
      EXPECT_EQ(tm->msgs_recv(), 5u);
      EXPECT_EQ(tm->bytes_recv(), 5u * 16u * sizeof(int));
      // The first receive arrived ~40 ms after the post, so the rank
      // parked at least once and the wait histogram saw it.
      EXPECT_GE(tm->waits(), 1u);
      EXPECT_GE(tm->wait_block_latency().count(), 1u);
      EXPECT_GT(tm->wait_ns(), 1000000u);  // > 1 ms parked
    }
  }, opts);
}

TEST_F(TelemetryRun, CollectiveLatencyHistogramFillsPerExecution) {
  mpl::RunOptions opts;
  opts.telemetry.enabled = true;
  mpl::run(4, [](mpl::Comm& world) {
    const cartcomm::Neighborhood nb = cartcomm::Neighborhood::von_neumann(2);
    const std::vector<int> dims{2, 2};
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    std::vector<int> sb(static_cast<std::size_t>(t), world.rank());
    std::vector<int> rb(static_cast<std::size_t>(t), -1);
    constexpr int kExecs = 3;
    for (int i = 0; i < kExecs; ++i) {
      cartcomm::alltoall(sb.data(), 1, kInt, rb.data(), 1, kInt, cc,
                         cartcomm::Algorithm::combining);
    }
    const telemetry::RankTelemetry* tm = world.telemetry();
    ASSERT_NE(tm, nullptr);
    EXPECT_EQ(tm->collectives(), static_cast<std::uint64_t>(kExecs));
    EXPECT_EQ(tm->collective_latency().count(),
              static_cast<std::uint64_t>(kExecs));
    EXPECT_GT(tm->collective_latency().sum(), 0u);
  }, opts);
}

TEST_F(TelemetryRun, FaultRetriesSurfaceInTelemetry) {
  mpl::RunOptions opts;
  opts.telemetry.enabled = true;
  opts.faults.drop = 0.5;
  opts.faults.seed = 7;
  std::atomic<std::uint64_t> retries{0};
  mpl::run(2, [&](mpl::Comm& world) {
    std::vector<int> buf(16, world.rank());
    if (world.rank() == 0) {
      for (int i = 0; i < 50; ++i) world.send(buf.data(), 16, kInt, 1, 2);
      retries.store(world.telemetry()->fault_retries(),
                    std::memory_order_relaxed);
    } else {
      for (int i = 0; i < 50; ++i) world.recv(buf.data(), 16, kInt, 0, 2);
    }
  }, opts);
  // drop=0.5 over 50 messages: the deterministic fault plan forces many
  // retransmits; each one counts.
  EXPECT_GT(retries.load(), 0u);
}

// ---------------------------------------------------------------------------
// OpenMetrics export
// ---------------------------------------------------------------------------

TEST_F(TelemetryExport, WriterEmitsValidSkeletonForEmptySnapshot) {
  telemetry::MetricsSnapshot snap;
  snap.nprocs = 3;
  std::ostringstream os;
  telemetry::write_openmetrics(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE mpl_ranks gauge\n"), std::string::npos);
  EXPECT_NE(text.find("mpl_ranks 3\n"), std::string::npos);
  EXPECT_NE(text.find("mpl_msgs_sent_total 0\n"), std::string::npos);
  // Histograms always carry the +Inf bucket and _count/_sum.
  EXPECT_NE(text.find("mpl_message_size_bytes_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpl_message_size_bytes_count 0\n"), std::string::npos);
  // Terminated exactly once, at the end.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST_F(TelemetryExport, HistogramBucketsAreCumulative) {
  telemetry::MetricsSnapshot snap;
  snap.msg_bytes.record(10);
  snap.msg_bytes.record(10);
  snap.msg_bytes.record(100000);
  std::ostringstream os;
  telemetry::write_openmetrics(os, snap);
  const std::string text = os.str();
  // Two values in the le=10 bucket, cumulative 3 by the +Inf bucket.
  EXPECT_NE(text.find("mpl_message_size_bytes_bucket{le=\"10\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mpl_message_size_bytes_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mpl_message_size_bytes_count 3\n"), std::string::npos);
}

TEST_F(TelemetryExport, RunWritesOpenMetricsFile) {
  const std::string path = ::testing::TempDir() + "telemetry_export.om";
  std::remove(path.c_str());
  mpl::RunOptions opts;
  opts.telemetry.openmetrics_path = path;  // implies armed()
  mpl::run(4, [](mpl::Comm& world) {
    const cartcomm::Neighborhood nb = cartcomm::Neighborhood::von_neumann(2);
    const std::vector<int> dims{2, 2};
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    std::vector<int> sb(static_cast<std::size_t>(t), world.rank());
    std::vector<int> rb(static_cast<std::size_t>(t), -1);
    cartcomm::alltoall(sb.data(), 1, kInt, rb.data(), 1, kInt, cc,
                       cartcomm::Algorithm::combining);
  }, opts);

  std::ifstream is(path);
  ASSERT_TRUE(is) << "run() did not write " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("mpl_ranks 4\n"), std::string::npos);
  // Counters moved: 4 ranks exchanged schedule traffic.
  EXPECT_NE(text.find("# TYPE mpl_msgs_sent counter\n"), std::string::npos);
  EXPECT_EQ(text.find("mpl_msgs_sent_total 0\n"), std::string::npos) << text;
  // The collective histogram saw one execution per rank.
  EXPECT_NE(text.find("mpl_collective_latency_seconds_count 4\n"),
            std::string::npos)
      << text;
  // Pool gauges and contention counters are present.
  EXPECT_NE(text.find("# TYPE mpl_pool_free_buffers gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("mpl_lock_acquisitions_total{level=\"mailbox\"}"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST_F(TelemetryExport, EnvConfigOverlays) {
  telemetry::TelemetryConfig c;
  EXPECT_FALSE(c.armed());
  setenv("MPL_TELEMETRY", "1", 1);
  c.apply_env();
  EXPECT_TRUE(c.enabled);
  EXPECT_TRUE(c.armed());

  setenv("MPL_TELEMETRY", "0", 1);
  setenv("MPL_OPENMETRICS", "metrics.om", 1);
  setenv("MPL_OPENMETRICS_PERIOD_MS", "250", 1);
  telemetry::TelemetryConfig c2;
  c2.apply_env();
  EXPECT_FALSE(c2.enabled);
  EXPECT_EQ(c2.openmetrics_path, "metrics.om");
  EXPECT_TRUE(c2.armed()) << "an export path alone must arm telemetry";
  EXPECT_DOUBLE_EQ(c2.period_ms, 250.0);
  unsetenv("MPL_TELEMETRY");
  unsetenv("MPL_OPENMETRICS");
  unsetenv("MPL_OPENMETRICS_PERIOD_MS");
}
