// Regression tests for the transport hot path: many-sender mailbox
// contention (run under TSan in CI), per-(sender,ctx) FIFO matching,
// payload-buffer pooling, test_any fairness, the G_pack accounting split
// between post and completion, truncation cost accounting, and bitwise
// determinism of model runs.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"
#include "mpl/pool.hpp"

using mpl::Comm;
using mpl::Datatype;
using mpl::NetConfig;
using mpl::Request;
using mpl::Status;

namespace {

const Datatype kInt = Datatype::of<int>();

NetConfig exact_model() {
  NetConfig cfg;
  cfg.enabled = true;
  cfg.o = 1e-6;
  cfg.L = 5e-6;
  cfg.G = 1e-9;
  cfg.o_block = 1e-7;
  cfg.G_pack = 2e-9;
  return cfg;
}

}  // namespace

// -- many-sender stress (the TSan workload) ---------------------------------

TEST(TransportStress, SixteenSendersOneMailboxWaitAny) {
  // 16 senders flood one mailbox while the receiver drains through a
  // window of wildcard irecvs, wait_any, and interleaved iprobe calls —
  // the exact concurrency pattern the two-phase deliver/complete protocol
  // and the targeted wakeups must keep correct. Every (sender, seq) pair
  // must arrive exactly once.
  static constexpr int kSenders = 16;
  static constexpr int kPerSender = 150;
  static constexpr int kWindow = 8;
  mpl::run(kSenders + 1, [](Comm& c) {
    if (c.rank() == 0) {
      const int total = kSenders * kPerSender;
      std::vector<std::vector<bool>> seen(
          kSenders, std::vector<bool>(kPerSender, false));
      std::vector<std::array<int, 2>> bufs(kWindow);
      std::vector<Request> reqs(kWindow);
      int posted = 0;
      for (int i = 0; i < kWindow && posted < total; ++i, ++posted) {
        reqs[static_cast<std::size_t>(i)] =
            c.irecv(bufs[static_cast<std::size_t>(i)].data(), 2, kInt,
                    mpl::ANY_SOURCE, mpl::ANY_TAG);
      }
      for (int got = 0; got < total; ++got) {
        if (got % 64 == 0) {
          Status st;
          // Probe purely to contend the mailbox lock; a hit or miss are
          // both fine, the wait_any below consumes the traffic.
          (void)c.iprobe(mpl::ANY_SOURCE, mpl::ANY_TAG, &st);
        }
        std::size_t idx = 0;
        const Status st = mpl::wait_any(reqs, &idx);
        const auto& msg = bufs[idx];
        const int sender = msg[0] - 1;  // ranks 1..16
        const int seq = msg[1];
        ASSERT_GE(sender, 0);
        ASSERT_LT(sender, kSenders);
        ASSERT_GE(seq, 0);
        ASSERT_LT(seq, kPerSender);
        ASSERT_EQ(st.source, msg[0]);
        ASSERT_FALSE(seen[static_cast<std::size_t>(sender)]
                         [static_cast<std::size_t>(seq)])
            << "duplicate delivery from sender " << sender << " seq " << seq;
        seen[static_cast<std::size_t>(sender)][static_cast<std::size_t>(seq)] =
            true;
        if (posted < total) {
          reqs[idx] = c.irecv(bufs[idx].data(), 2, kInt, mpl::ANY_SOURCE,
                              mpl::ANY_TAG);
          ++posted;
        } else {
          reqs[idx] = Request();
        }
      }
      for (const auto& per_sender : seen) {
        for (bool hit : per_sender) EXPECT_TRUE(hit);
      }
    } else {
      for (int seq = 0; seq < kPerSender; ++seq) {
        const std::array<int, 2> msg{c.rank(), seq};
        c.send(msg.data(), 2, kInt, 0, /*tag=*/seq % 5);
      }
    }
  });
}

TEST(TransportStress, PerSenderFifoUnderContention) {
  // Blocking wildcard receives consume messages in matching order, so the
  // sequence numbers from any one sender must arrive strictly in send
  // order even while 16 senders interleave arbitrarily.
  static constexpr int kSenders = 16;
  static constexpr int kPerSender = 100;
  mpl::run(kSenders + 1, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> next(kSenders, 0);
      for (int got = 0; got < kSenders * kPerSender; ++got) {
        std::array<int, 2> msg{-1, -1};
        const Status st = c.recv(msg.data(), 2, kInt, mpl::ANY_SOURCE);
        const int sender = msg[0] - 1;
        ASSERT_EQ(st.source, msg[0]);
        ASSERT_EQ(msg[1], next[static_cast<std::size_t>(sender)])
            << "FIFO violated for sender " << sender;
        ++next[static_cast<std::size_t>(sender)];
      }
    } else {
      for (int seq = 0; seq < kPerSender; ++seq) {
        const std::array<int, 2> msg{c.rank(), seq};
        c.send(msg.data(), 2, kInt, 0);
      }
    }
  });
}

// -- payload-buffer pooling --------------------------------------------------

TEST(TransportPool, RoundTripTrafficRecyclesBuffers) {
  // In a ping-pong the receiver hands each payload buffer back to the
  // sender's pool before the next send, so steady-state rounds allocate
  // nothing: the pool must report freelist hits and recycles on both ends.
  constexpr int kRounds = 64;
  mpl::run(2, [](Comm& c) {
    std::vector<int> buf(64, c.rank());
    for (int r = 0; r < kRounds; ++r) {
      if (c.rank() == 0) {
        c.send(buf.data(), 64, kInt, 1, 0);
        c.recv(buf.data(), 64, kInt, 1, 0);
      } else {
        c.recv(buf.data(), 64, kInt, 0, 0);
        c.send(buf.data(), 64, kInt, 0, 0);
      }
    }
    const auto s = mpl::this_proc()->pool().stats();
    EXPECT_GT(s.hits, 0u) << "steady-state sends never hit the freelist";
    EXPECT_GT(s.recycled, 0u) << "receivers never returned a buffer";
    EXPECT_GE(s.hits + s.misses, static_cast<std::uint64_t>(kRounds));
  });
}

// -- test_any fairness -------------------------------------------------------

TEST(TransportFairness, TestAnyRotatesItsStartIndex) {
  // With four completed requests, four consecutive test_any calls must
  // return four *distinct* indices. The old fixed scan-from-zero returned
  // index 0 every time, starving high indices under sustained traffic.
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> bufs(4, -1);
      std::vector<Request> reqs(4);
      for (int t = 0; t < 4; ++t) {
        reqs[static_cast<std::size_t>(t)] =
            c.irecv(&bufs[static_cast<std::size_t>(t)], 1, kInt, 1, t);
      }
      c.hard_sync();  // recvs posted before any send departs
      c.hard_sync();  // all four sends delivered and completed
      std::array<bool, 4> returned{};
      for (int call = 0; call < 4; ++call) {
        std::size_t idx = 99;
        Status st;
        ASSERT_TRUE(mpl::test_any(reqs, &idx, &st));
        ASSERT_LT(idx, 4u);
        EXPECT_FALSE(returned[idx])
            << "test_any returned index " << idx << " twice in a row";
        returned[idx] = true;
      }
      for (int t = 0; t < 4; ++t) EXPECT_EQ(bufs[static_cast<std::size_t>(t)], t);
    } else {
      c.hard_sync();
      for (int t = 0; t < 4; ++t) c.send(&t, 1, kInt, 0, t);
      c.hard_sync();
    }
  });
}

// -- G_pack accounting -------------------------------------------------------

TEST(NetClockGPack, PostRecvChargesOverheadOnly) {
  // Posting a receive knows only the *capacity*, so it must charge just
  // o + blocks*o_block; the datatype-scatter cost waits for the actual
  // message size at completion.
  const NetConfig cfg = exact_model();
  mpl::NetClock clk;
  clk.configure(cfg, 0);
  clk.post_recv(4);
  EXPECT_DOUBLE_EQ(clk.now(), cfg.o + 4 * cfg.o_block);
}

TEST(NetClockGPack, CompleteRecvChargesPackOnActualBytes) {
  const NetConfig cfg = exact_model();
  mpl::NetClock clk;
  clk.configure(cfg, 0);
  mpl::NetClock::RecvTiming t;
  const double ready =
      clk.complete_recv(/*depart=*/0.0, /*bytes=*/1000, /*from_self=*/false,
                        /*packed=*/true, &t);
  EXPECT_DOUBLE_EQ(ready, cfg.L + cfg.G * 1000 + cfg.G_pack * 1000);
  EXPECT_DOUBLE_EQ(t.g_pack, cfg.G_pack * 1000);
  EXPECT_DOUBLE_EQ(t.g, cfg.G * 1000);
  EXPECT_DOUBLE_EQ(t.latency, cfg.L);
}

TEST(NetClockGPack, DenseMessagePaysNoPack) {
  const NetConfig cfg = exact_model();
  mpl::NetClock clk;
  clk.configure(cfg, 0);
  const double ready = clk.complete_recv(0.0, 1000, false, /*packed=*/false);
  EXPECT_DOUBLE_EQ(ready, cfg.L + cfg.G * 1000);
}

TEST(NetClockGPack, ScatterOverlapsNextWireTransfer) {
  // The receive port frees at *wire* completion — the scatter is CPU
  // time — so a second back-to-back arrival queues behind the first
  // message's wire time only, not its G_pack.
  const NetConfig cfg = exact_model();
  mpl::NetClock clk;
  clk.configure(cfg, 0);
  const double r1 = clk.complete_recv(0.0, 1000, false, true);
  const double wire1 = cfg.L + cfg.G * 1000;
  EXPECT_DOUBLE_EQ(r1, wire1 + cfg.G_pack * 1000);
  const double r2 = clk.complete_recv(0.0, 1000, false, true);
  EXPECT_DOUBLE_EQ(r2, wire1 + cfg.G * 1000 + cfg.G_pack * 1000);
}

TEST(NetModelGPack, NonContiguousRoundTripClosedForm) {
  // End to end: a 4-block strided message charges G_pack at both ends on
  // the 16 payload bytes, and the receiver's clock lands exactly on
  //   depart + L + G*16 + G_pack*16
  // with depart = o + 4*o_block + G_pack*16 at the sender.
  mpl::RunOptions opts;
  opts.net = exact_model();
  const NetConfig& cfg = opts.net;
  mpl::run(
      2,
      [&](Comm& c) {
        const Datatype vec = Datatype::vector(4, 1, 2, kInt);
        ASSERT_EQ(vec.size(), 16u);
        if (c.rank() == 0) {
          std::array<int, 8> src{0, 1, 2, 3, 4, 5, 6, 7};
          c.send(src.data(), 1, vec, 1, 0);
          const double depart = cfg.o + 4 * cfg.o_block + cfg.G_pack * 16;
          EXPECT_NEAR(c.vclock(), depart, 1e-15);
        } else {
          std::array<int, 8> dst{};
          c.recv(dst.data(), 1, vec, 0, 0);
          EXPECT_EQ(dst[0], 0);
          EXPECT_EQ(dst[2], 2);
          EXPECT_EQ(dst[4], 4);
          EXPECT_EQ(dst[6], 6);
          const double depart = cfg.o + 4 * cfg.o_block + cfg.G_pack * 16;
          const double expect =
              depart + cfg.L + cfg.G * 16 + cfg.G_pack * 16;
          EXPECT_NEAR(c.vclock(), expect, 1e-15);
        }
      },
      opts);
}

// -- truncation --------------------------------------------------------------

TEST(TransportTruncation, AccountsWireCostBeforeThrowing) {
  // A truncated message still crossed the wire: the receiver's clock must
  // advance past the full transfer of the *actual* incoming bytes even
  // though the receive is reported as an error. Only the unpack (and its
  // G_pack, for dense messages zero anyway) is suppressed.
  mpl::RunOptions opts;
  opts.net = exact_model();
  const NetConfig& cfg = opts.net;
  mpl::run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          std::array<int, 8> big{};
          c.send(big.data(), 8, kInt, 1, 0);
        } else {
          std::array<int, 4> small{};
          EXPECT_THROW(c.recv(small.data(), 4, kInt, 0, 0), mpl::Error);
          const double depart = cfg.o + cfg.o_block;  // dense, 1 block
          const double expect = depart + cfg.L + cfg.G * 32;
          EXPECT_NEAR(c.vclock(), expect, 1e-15);
        }
      },
      opts);
}

TEST(TransportTruncation, FastPathReportsTruncationToo) {
  // With the model off, a blocking receive of an already-queued message
  // takes the no-request fast path; it must surface the same error.
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::array<int, 8> big{};
      c.send(big.data(), 8, kInt, 1, 0);
      c.hard_sync();  // message queued as unexpected before the recv
    } else {
      c.hard_sync();
      std::array<int, 4> small{};
      EXPECT_THROW(c.recv(small.data(), 4, kInt, 0, 0), mpl::Error);
    }
  });
}

// -- determinism -------------------------------------------------------------

namespace {

// One 5-point persistent-schedule exchange on a 3x3 torus; returns every
// rank's final vclock plus rank 0's schedule dump.
std::pair<std::vector<double>, std::string> run_schedule_once() {
  std::vector<double> clocks(9, 0.0);
  std::string dump;
  mpl::RunOptions opts;
  opts.net = NetConfig::gemini();
  mpl::run(
      9,
      [&](Comm& world) {
        const auto nb =
            cartcomm::Neighborhood::von_neumann(2, /*include_self=*/false);
        const std::vector<int> dims{3, 3};
        const std::vector<int> periods{1, 1};
        auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
        const int t = nb.count();
        std::vector<int> sb(static_cast<std::size_t>(t) * 4, world.rank());
        std::vector<int> rb(static_cast<std::size_t>(t) * 4, -1);
        std::vector<cartcomm::SendBlock> sends(static_cast<std::size_t>(t));
        std::vector<cartcomm::RecvBlock> recvs(static_cast<std::size_t>(t));
        for (int i = 0; i < t; ++i) {
          sends[static_cast<std::size_t>(i)] = {&sb[static_cast<std::size_t>(i) * 4],
                                                4, kInt};
          recvs[static_cast<std::size_t>(i)] = {&rb[static_cast<std::size_t>(i) * 4],
                                                4, kInt};
        }
        cartcomm::Schedule s = cartcomm::build_alltoall_schedule(cc, sends, recvs);
        for (int round = 0; round < 3; ++round) s.execute(cc.comm());
        clocks[static_cast<std::size_t>(world.rank())] = world.vclock();
        if (world.rank() == 0) dump = s.dump();
      },
      opts);
  return {clocks, dump};
}

}  // namespace

TEST(TransportDeterminism, ModelRunsAreBitIdentical) {
  // The hot-path rework (two-phase delivery, pooling, targeted wakeups,
  // lock-free polling) must not leak host scheduling into results: two
  // identical runs produce bitwise-equal virtual clocks and an identical
  // schedule dump.
  const auto a = run_schedule_once();
  const auto b = run_schedule_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first[0], 0.0);
}
