// Property-based validation of the datatype engine: randomly composed
// nested datatypes are checked against an independent reference
// interpreter that walks the constructor tree and enumerates the typemap
// directly. pack/unpack round-trips and size/extent/flatten results must
// agree exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "mpl/datatype.hpp"

using mpl::Datatype;

namespace {

// Reference model: an explicit list of (byte displacement) for each
// payload byte, in typemap order, plus lb/extent bookkeeping mirroring
// the MPI rules the engine implements.
struct Ref {
  std::vector<std::ptrdiff_t> bytes;  // displacement of each payload byte
  std::ptrdiff_t lb = 0;
  std::ptrdiff_t ub = 0;
};

Ref ref_basic(std::size_t n) {
  Ref r;
  for (std::size_t i = 0; i < n; ++i) r.bytes.push_back(static_cast<std::ptrdiff_t>(i));
  r.lb = 0;
  r.ub = static_cast<std::ptrdiff_t>(n);
  return r;
}

void ref_footprint(Ref& r) {
  if (r.bytes.empty()) {
    r.lb = r.ub = 0;
    return;
  }
  r.lb = r.bytes.front();
  r.ub = r.bytes.front() + 1;
  for (std::ptrdiff_t b : r.bytes) {
    r.lb = std::min(r.lb, b);
    r.ub = std::max(r.ub, b + 1);
  }
}

Ref ref_contiguous(int count, const Ref& in) {
  Ref r;
  const std::ptrdiff_t ext = in.ub - in.lb;
  for (int i = 0; i < count; ++i) {
    for (std::ptrdiff_t b : in.bytes) r.bytes.push_back(b + i * ext);
  }
  r.lb = in.lb;
  r.ub = in.lb + count * ext;
  return r;
}

Ref ref_vector(int count, int blocklen, int stride, const Ref& in) {
  Ref r;
  const std::ptrdiff_t ext = in.ub - in.lb;
  for (int i = 0; i < count; ++i) {
    for (int j = 0; j < blocklen; ++j) {
      const std::ptrdiff_t shift = (static_cast<std::ptrdiff_t>(i) * stride + j) * ext;
      for (std::ptrdiff_t b : in.bytes) r.bytes.push_back(b + shift);
    }
  }
  ref_footprint(r);
  return r;
}

Ref ref_hindexed(const std::vector<int>& lens,
                 const std::vector<std::ptrdiff_t>& disps, const Ref& in) {
  Ref r;
  const std::ptrdiff_t ext = in.ub - in.lb;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    for (int j = 0; j < lens[i]; ++j) {
      for (std::ptrdiff_t b : in.bytes) r.bytes.push_back(b + disps[i] + j * ext);
    }
  }
  ref_footprint(r);
  return r;
}

// Random (engine datatype, reference) pair. Depth-bounded recursion keeps
// the footprints small enough to test exhaustively.
std::pair<Datatype, Ref> random_type(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth == 0 ? 0 : 3);
  std::uniform_int_distribution<int> small(1, 3);
  switch (kind_dist(rng)) {
    case 0: {
      const int n = small(rng);
      return {Datatype::bytes(static_cast<std::size_t>(n)), ref_basic(static_cast<std::size_t>(n))};
    }
    case 1: {
      auto [t, r] = random_type(rng, depth - 1);
      const int count = small(rng);
      return {Datatype::contiguous(count, t), ref_contiguous(count, r)};
    }
    case 2: {
      auto [t, r] = random_type(rng, depth - 1);
      const int count = small(rng);
      const int blocklen = small(rng);
      const int stride = blocklen + small(rng) - 1;  // may overlap-free pack
      return {Datatype::vector(count, blocklen, stride, t),
              ref_vector(count, blocklen, stride, r)};
    }
    default: {
      auto [t, r] = random_type(rng, depth - 1);
      const int nblocks = small(rng);
      std::vector<int> lens;
      std::vector<std::ptrdiff_t> disps;
      const std::ptrdiff_t ext = r.ub - r.lb;
      std::ptrdiff_t cursor = 0;
      for (int i = 0; i < nblocks; ++i) {
        const int len = small(rng);
        lens.push_back(len);
        disps.push_back(cursor);
        cursor += (len + small(rng)) * std::max<std::ptrdiff_t>(ext, 1);
      }
      return {Datatype::hindexed(lens, disps, t), ref_hindexed(lens, disps, r)};
    }
  }
}

}  // namespace

class DatatypeFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DatatypeFuzz, EngineAgreesWithReferenceInterpreter) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    auto [t, ref] = random_type(rng, 3);

    // Structural agreement.
    ASSERT_EQ(t.size(), ref.bytes.size());
    ASSERT_EQ(t.lb(), ref.lb);
    ASSERT_EQ(t.extent(), ref.ub - ref.lb);

    // The flattened blocks must enumerate exactly the reference bytes, in
    // typemap order.
    std::vector<mpl::TypeBlock> blocks;
    t.flatten(0, 1, blocks);
    std::vector<std::ptrdiff_t> enumerated;
    for (const auto& b : blocks) {
      for (std::size_t j = 0; j < b.len; ++j) {
        enumerated.push_back(b.disp + static_cast<std::ptrdiff_t>(j));
      }
    }
    ASSERT_EQ(enumerated, ref.bytes) << "trial " << trial;

    // pack must gather exactly the reference bytes in order.
    const std::ptrdiff_t span = ref.ub - ref.lb;
    std::vector<unsigned char> field(static_cast<std::size_t>(span) + 16);
    for (std::size_t i = 0; i < field.size(); ++i) {
      field[i] = static_cast<unsigned char>(i * 37 + 11);
    }
    unsigned char* base = field.data() - ref.lb;  // lb may be negative
    std::vector<std::byte> packed(t.pack_size(1));
    t.pack(base, 1, packed.data());
    for (std::size_t i = 0; i < ref.bytes.size(); ++i) {
      ASSERT_EQ(static_cast<unsigned char>(packed[i]),
                base[ref.bytes[i]])
          << "trial " << trial << " byte " << i;
    }

    // unpack must scatter them back: round-trip through a cleared field.
    std::vector<unsigned char> out(field.size(), 0xEE);
    unsigned char* obase = out.data() - ref.lb;
    t.unpack(packed.data(), obase, 1);
    for (std::ptrdiff_t p = ref.lb; p < ref.ub; ++p) {
      const bool selected =
          std::find(ref.bytes.begin(), ref.bytes.end(), p) != ref.bytes.end();
      if (selected) {
        ASSERT_EQ(obase[p], base[p]) << "trial " << trial;
      } else {
        ASSERT_EQ(obase[p], 0xEE) << "trial " << trial << " disp " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeFuzz,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u));
