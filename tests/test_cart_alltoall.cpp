// Correctness of the Cartesian alltoall: trivial and message-combining
// algorithms against an analytic oracle, schedule structure against
// Proposition 3.2, randomized isomorphic neighborhoods.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cart_test_util.hpp"

using cartcomm::Algorithm;
using cartcomm::Neighborhood;
using carttest::check_alltoall;

namespace {
const std::vector<int> kNoPeriods;  // default: fully periodic (torus)
}

TEST(CartAlltoall, Moore2DTrivial) {
  check_alltoall({3, 4}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 3,
                 Algorithm::trivial);
}

TEST(CartAlltoall, Moore2DCombining) {
  check_alltoall({3, 4}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 3,
                 Algorithm::combining);
}

TEST(CartAlltoall, Moore3DCombining) {
  check_alltoall({3, 2, 4}, kNoPeriods, Neighborhood::stencil(3, 3, -1), 2,
                 Algorithm::combining);
}

TEST(CartAlltoall, Asymmetric4Neighbors) {
  // n=4, f=-1: offsets {-1,0,1,2} — the paper's asymmetric configuration.
  check_alltoall({4, 5}, kNoPeriods, Neighborhood::stencil(2, 4, -1), 2,
                 Algorithm::combining);
}

TEST(CartAlltoall, OffsetsLargerThanDims) {
  // Offsets wrap multiple times around a small torus; multiple target
  // vectors collapse onto the same process.
  Neighborhood nb(2, {3, 0, -4, 1, 5, 5, 0, -7});
  check_alltoall({3, 2}, kNoPeriods, nb, 4, Algorithm::combining);
  check_alltoall({3, 2}, kNoPeriods, nb, 4, Algorithm::trivial);
}

TEST(CartAlltoall, RepeatedOffsets) {
  Neighborhood nb(2, {1, 1, 1, 1, -1, 0, 1, 1});
  check_alltoall({3, 3}, kNoPeriods, nb, 2, Algorithm::combining);
  check_alltoall({3, 3}, kNoPeriods, nb, 2, Algorithm::trivial);
}

TEST(CartAlltoall, ZeroVectorOnly) {
  Neighborhood nb(2, {0, 0});
  check_alltoall({2, 2}, kNoPeriods, nb, 5, Algorithm::combining);
}

TEST(CartAlltoall, EmptyNeighborhood) {
  Neighborhood nb(2, {});
  check_alltoall({2, 2}, kNoPeriods, nb, 1, Algorithm::combining);
}

TEST(CartAlltoall, SingleProcessTorus) {
  // Everything wraps to self.
  check_alltoall({1, 1}, kNoPeriods, Neighborhood::stencil(2, 3, -1), 2,
                 Algorithm::combining);
}

TEST(CartAlltoall, OneDimensionalRing) {
  check_alltoall({6}, kNoPeriods, Neighborhood(1, {-2, -1, 0, 1, 2}), 3,
                 Algorithm::combining);
}

TEST(CartAlltoall, AutomaticSmallBlocksPicksCombining) {
  mpl::RunOptions opts;
  opts.net = mpl::NetConfig::omnipath();
  mpl::run(
      8,
      [](mpl::Comm& world) {
        const std::vector<int> dims{2, 4};
        auto cc = cartcomm::cart_neighborhood_create(
            world, dims, {}, Neighborhood::stencil(2, 3, -1));
        auto op = cartcomm::alltoall_init(nullptr, 0, mpl::Datatype::of<int>(),
                                          nullptr, 0, mpl::Datatype::of<int>(),
                                          cc, Algorithm::automatic);
        EXPECT_EQ(op.algorithm(), Algorithm::combining);
      },
      opts);
}

TEST(CartAlltoall, AutomaticHugeBlocksPicksTrivial) {
  mpl::RunOptions opts;
  opts.net = mpl::NetConfig::omnipath();
  mpl::run(
      4,
      [](mpl::Comm& world) {
        const std::vector<int> dims{2, 2};
        auto cc = cartcomm::cart_neighborhood_create(
            world, dims, {}, Neighborhood::stencil(2, 3, -1));
        std::vector<int> dummy(9 * (1 << 20));
        auto op = cartcomm::alltoall_init(
            dummy.data(), 1 << 20, mpl::Datatype::of<int>(), dummy.data(),
            1 << 20, mpl::Datatype::of<int>(), cc, Algorithm::automatic);
        EXPECT_EQ(op.algorithm(), Algorithm::trivial);
      },
      opts);
}

TEST(CartAlltoallSchedule, StructureMatchesProposition32) {
  mpl::run(8, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2, 2};
    const Neighborhood nb = Neighborhood::stencil(3, 3, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    std::vector<int> sb(static_cast<std::size_t>(t)), rb(static_cast<std::size_t>(t));
    auto op = cartcomm::alltoall_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                      rb.data(), 1, mpl::Datatype::of<int>(),
                                      cc, Algorithm::combining);
    const cartcomm::Schedule& s = op.schedule();
    EXPECT_EQ(s.phases(), 3);                 // d communication phases
    EXPECT_EQ(s.rounds(), 6);                 // C = d(n-1)
    EXPECT_EQ(s.send_block_count(), 54);      // V = sum z_i
    EXPECT_EQ(s.copy_count(), 1);             // the zero vector
    for (int ph : s.phase_rounds()) EXPECT_EQ(ph, 2);  // C_k = n-1
    // Volume in bytes: V * m.
    EXPECT_EQ(s.send_bytes(), 54 * static_cast<long long>(sizeof(int)));
  });
}

TEST(CartAlltoallSchedule, TempBufferOnlyForMultiHopBlocks) {
  mpl::run(4, [](mpl::Comm& world) {
    const std::vector<int> dims{2, 2};
    // Von Neumann: all blocks single-hop — no temp space needed.
    const Neighborhood nb = Neighborhood::von_neumann(2);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    std::vector<int> sb(4), rb(4);
    auto op = cartcomm::alltoall_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                      rb.data(), 1, mpl::Datatype::of<int>(),
                                      cc, Algorithm::combining);
    EXPECT_EQ(op.schedule().temp_bytes(), 0u);
  });
}

TEST(CartAlltoall, CombiningMatchesTrivialElementwise) {
  // Same inputs through both algorithms must agree bit for bit.
  mpl::run(12, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 4};
    const Neighborhood nb = Neighborhood::stencil(2, 4, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    const int m = 7;
    std::vector<double> sb(static_cast<std::size_t>(t) * m);
    for (std::size_t j = 0; j < sb.size(); ++j) {
      sb[j] = world.rank() * 1000.0 + static_cast<double>(j) * 0.5;
    }
    std::vector<double> r1(sb.size(), -1), r2(sb.size(), -2);
    cartcomm::alltoall(sb.data(), m, mpl::Datatype::of<double>(), r1.data(), m,
                       mpl::Datatype::of<double>(), cc, Algorithm::trivial);
    cartcomm::alltoall(sb.data(), m, mpl::Datatype::of<double>(), r2.data(), m,
                       mpl::Datatype::of<double>(), cc, Algorithm::combining);
    EXPECT_EQ(r1, r2);
  });
}

TEST(CartAlltoall, MatchesNeighborAlltoallBaseline) {
  // The Cartesian operation implements exactly the pattern of the MPI
  // neighborhood collective on the equivalent distributed graph.
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> dims{3, 3};
    const Neighborhood nb = Neighborhood::moore(2);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    mpl::DistGraphComm g = cc.to_dist_graph();
    const int t = nb.count();
    const int m = 3;
    std::vector<int> sb(static_cast<std::size_t>(t) * m);
    for (std::size_t j = 0; j < sb.size(); ++j) {
      sb[j] = world.rank() * 100 + static_cast<int>(j);
    }
    std::vector<int> r1(sb.size(), -1), r2(sb.size(), -2);
    cartcomm::alltoall(sb.data(), m, mpl::Datatype::of<int>(), r1.data(), m,
                       mpl::Datatype::of<int>(), cc, Algorithm::combining);
    mpl::neighbor_alltoall(sb.data(), m, mpl::Datatype::of<int>(), r2.data(), m,
                           mpl::Datatype::of<int>(), g);
    EXPECT_EQ(r1, r2);
  });
}

// -- randomized isomorphic neighborhoods --------------------------------------

struct RandomCase {
  unsigned seed;
  int d;
};

class CartAlltoallRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(CartAlltoallRandom, OracleAgreement) {
  const auto [seed, d] = GetParam();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dim_dist(2, 4);
  std::uniform_int_distribution<int> off_dist(-3, 3);
  std::uniform_int_distribution<int> t_dist(1, 10);
  std::uniform_int_distribution<int> m_dist(1, 5);

  std::vector<int> dims(static_cast<std::size_t>(d));
  for (auto& x : dims) x = dim_dist(rng);
  const int t = t_dist(rng);
  std::vector<int> flat;
  for (int i = 0; i < t * d; ++i) flat.push_back(off_dist(rng));
  const Neighborhood nb(d, std::move(flat));
  const int m = m_dist(rng);

  check_alltoall(dims, kNoPeriods, nb, m, Algorithm::combining);
  check_alltoall(dims, kNoPeriods, nb, m, Algorithm::trivial);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CartAlltoallRandom,
                         ::testing::Values(RandomCase{1, 2}, RandomCase{2, 2},
                                           RandomCase{3, 2}, RandomCase{4, 3},
                                           RandomCase{5, 3}, RandomCase{6, 3},
                                           RandomCase{7, 4}, RandomCase{8, 4},
                                           RandomCase{9, 1}, RandomCase{10, 1},
                                           RandomCase{11, 5}, RandomCase{12, 5}));

TEST(CartAlltoall, LargeMooreD4) {
  // d=4, n=3: t=81 neighbors on a 16-process torus.
  check_alltoall({2, 2, 2, 2}, kNoPeriods, Neighborhood::stencil(4, 3, -1), 2,
                 Algorithm::combining);
}
