// Cartesian grid arithmetic, Cartesian communicators, distributed graphs.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mpl/mpl.hpp"

using mpl::CartGrid;
using mpl::Comm;

TEST(CartGrid, RowMajorRankOrder) {
  const std::vector<int> dims{2, 3};
  CartGrid g(dims, {});
  EXPECT_EQ(g.size(), 6);
  EXPECT_EQ(g.rank_of(std::array{0, 0}), 0);
  EXPECT_EQ(g.rank_of(std::array{0, 2}), 2);
  EXPECT_EQ(g.rank_of(std::array{1, 0}), 3);
  EXPECT_EQ(g.rank_of(std::array{1, 2}), 5);
}

TEST(CartGrid, CoordsInverseOfRank) {
  const std::vector<int> dims{3, 4, 2};
  CartGrid g(dims, {});
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g.rank_of(g.coords_of(r)), r);
  }
}

TEST(CartGrid, PeriodicWrapAround) {
  const std::vector<int> dims{3, 3};
  CartGrid g(dims, {});
  // From (0,0), offset (-1,-1) wraps to (2,2).
  EXPECT_EQ(g.rank_at_offset(std::array{0, 0}, std::array{-1, -1}),
            g.rank_of(std::array{2, 2}));
  // Large offsets wrap multiple times.
  EXPECT_EQ(g.rank_at_offset(std::array{1, 1}, std::array{7, -8}),
            g.rank_of(std::array{2, 2}));
}

TEST(CartGrid, NonPeriodicFallsOff) {
  const std::vector<int> dims{3, 3};
  const std::vector<int> periods{0, 1};
  CartGrid g(dims, periods);
  EXPECT_EQ(g.rank_at_offset(std::array{0, 0}, std::array{-1, 0}), mpl::PROC_NULL);
  EXPECT_EQ(g.rank_at_offset(std::array{2, 0}, std::array{1, 0}), mpl::PROC_NULL);
  // The periodic dimension still wraps.
  EXPECT_EQ(g.rank_at_offset(std::array{0, 0}, std::array{0, -1}),
            g.rank_of(std::array{0, 2}));
}

TEST(CartGrid, Validation) {
  EXPECT_THROW(CartGrid({}, {}), mpl::Error);
  const std::vector<int> bad{0, 2};
  EXPECT_THROW(CartGrid(bad, {}), mpl::Error);
}

TEST(DimsCreate, BalancedFactorizations) {
  EXPECT_EQ(mpl::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(mpl::dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(mpl::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(mpl::dims_create(16, 1), (std::vector<int>{16}));
  EXPECT_EQ(mpl::dims_create(1, 3), (std::vector<int>{1, 1, 1}));
}

TEST(CartComm, CoordsMatchRank) {
  mpl::run(6, [](Comm& c) {
    const std::vector<int> dims{2, 3};
    mpl::CartComm cart = mpl::cart_create(c, dims, {});
    EXPECT_EQ(cart.rank(), c.rank());
    EXPECT_EQ(cart.grid().rank_of(cart.coords()), c.rank());
  });
}

TEST(CartComm, SizeMismatchThrows) {
  EXPECT_THROW(mpl::run(5,
                        [](Comm& c) {
                          const std::vector<int> dims{2, 3};
                          mpl::cart_create(c, dims, {});
                        }),
               mpl::Error);
}

TEST(CartComm, RelativeShiftInverse) {
  mpl::run(12, [](Comm& c) {
    const std::vector<int> dims{3, 4};
    mpl::CartComm cart = mpl::cart_create(c, dims, {});
    const std::array<int, 2> rel{1, -2};
    auto [src, dst] = cart.relative_shift(rel);
    // The destination's source for the same offset must be this process:
    // verified by exchanging ranks through the shift.
    int from_src = -1;
    const int me = c.rank();
    cart.comm().sendrecv(&me, 1, mpl::Datatype::of<int>(), dst, 0, &from_src, 1,
                         mpl::Datatype::of<int>(), src, 0);
    EXPECT_EQ(from_src, src);
  });
}

TEST(CartComm, NonPeriodicShiftYieldsProcNull) {
  mpl::run(4, [](Comm& c) {
    const std::vector<int> dims{4};
    const std::vector<int> periods{0};
    mpl::CartComm cart = mpl::cart_create(c, dims, periods);
    const std::array<int, 1> rel{1};
    auto [src, dst] = cart.relative_shift(rel);
    if (c.rank() == 3) {
      EXPECT_EQ(dst, mpl::PROC_NULL);
    }
    if (c.rank() == 0) {
      EXPECT_EQ(src, mpl::PROC_NULL);
    }
    if (c.rank() == 1) {
      EXPECT_EQ(src, 0);
      EXPECT_EQ(dst, 2);
    }
  });
}

TEST(CartSub, SplitsIntoRows) {
  mpl::run(12, [](mpl::Comm& c) {
    const std::vector<int> dims{3, 4};
    mpl::CartComm cart = mpl::cart_create(c, dims, {});
    const std::vector<int> remain{0, 1};  // keep columns: 3 rows of 4
    mpl::CartComm row = mpl::cart_sub(cart, remain);
    EXPECT_EQ(row.size(), 4);
    EXPECT_EQ(row.ndims(), 1);
    EXPECT_EQ(row.dims()[0], 4);
    // My rank within the row is my column coordinate.
    EXPECT_EQ(row.rank(), cart.grid().coords_of(c.rank())[1]);
    // Sum of world ranks along my row.
    const int sum = mpl::allreduce(c.rank(), mpl::op::plus{}, row.comm());
    const int r0 = cart.grid().coords_of(c.rank())[0] * 4;
    EXPECT_EQ(sum, r0 + (r0 + 1) + (r0 + 2) + (r0 + 3));
  });
}

TEST(CartSub, KeepTwoOfThreeDimensions) {
  mpl::run(8, [](mpl::Comm& c) {
    const std::vector<int> dims{2, 2, 2};
    const std::vector<int> periods{1, 0, 1};
    mpl::CartComm cart = mpl::cart_create(c, dims, periods);
    const std::vector<int> remain{1, 0, 1};
    mpl::CartComm plane = mpl::cart_sub(cart, remain);
    EXPECT_EQ(plane.size(), 4);
    EXPECT_EQ(plane.ndims(), 2);
    EXPECT_TRUE(plane.grid().periodic(0));
    EXPECT_TRUE(plane.grid().periodic(1));
    const auto pc = plane.coords();
    const auto full = cart.grid().coords_of(c.rank());
    EXPECT_EQ(pc[0], full[0]);
    EXPECT_EQ(pc[1], full[2]);
  });
}

TEST(CartSub, DropNothingKeepsEverything) {
  mpl::run(6, [](mpl::Comm& c) {
    const std::vector<int> dims{2, 3};
    mpl::CartComm cart = mpl::cart_create(c, dims, {});
    const std::vector<int> remain{1, 1};
    mpl::CartComm same = mpl::cart_sub(cart, remain);
    EXPECT_EQ(same.size(), 6);
    EXPECT_EQ(same.rank(), c.rank());
  });
}

TEST(CartSub, DroppingAllThrows) {
  EXPECT_THROW(mpl::run(4,
                        [](mpl::Comm& c) {
                          const std::vector<int> dims{2, 2};
                          mpl::CartComm cart = mpl::cart_create(c, dims, {});
                          const std::vector<int> remain{0, 0};
                          mpl::cart_sub(cart, remain);
                        }),
               mpl::Error);
}

TEST(DistGraph, AdjacentCreationStoresLists) {
  mpl::run(4, [](Comm& c) {
    // Directed ring: receive from left, send to right.
    const std::vector<int> sources{(c.rank() - 1 + c.size()) % c.size()};
    const std::vector<int> targets{(c.rank() + 1) % c.size()};
    mpl::DistGraphComm g =
        mpl::dist_graph_create_adjacent(c, sources, {}, targets, {});
    EXPECT_EQ(g.indegree(), 1);
    EXPECT_EQ(g.outdegree(), 1);
    EXPECT_EQ(g.sources()[0], sources[0]);
    EXPECT_EQ(g.targets()[0], targets[0]);
  });
}

TEST(DistGraph, WeightsPreserved) {
  mpl::run(2, [](Comm& c) {
    const std::vector<int> nbr{1 - c.rank()};
    const std::vector<int> w{7};
    mpl::DistGraphComm g = mpl::dist_graph_create_adjacent(c, nbr, w, nbr, w);
    ASSERT_EQ(g.source_weights().size(), 1u);
    EXPECT_EQ(g.source_weights()[0], 7);
    EXPECT_EQ(g.target_weights()[0], 7);
  });
}

TEST(DistGraph, OutOfRangeNeighborThrows) {
  EXPECT_THROW(mpl::run(2,
                        [](Comm& c) {
                          const std::vector<int> bad{5};
                          mpl::dist_graph_create_adjacent(c, bad, {}, bad, {});
                        }),
               mpl::Error);
}
