// Stencil substrate: box datatypes, field indexing, halo exchange in both
// modes (alltoallw vs the Section 3.4 combined plan), Jacobi convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "mpl/mpl.hpp"
#include "stencil/field.hpp"
#include "stencil/apply.hpp"
#include "stencil/halo.hpp"

using stencil::Field;
using stencil::HaloExchange;
using stencil::HaloMode;

namespace {

// Global cell owner oracle: every process fills its interior with
// f(global coords); after an exchange every ghost cell must hold the value
// the owning process wrote.
int cell_value(std::span<const int> gcoord) {
  int v = 17;
  for (int c : gcoord) v = v * 1009 + c;
  return v;
}

struct HaloCase {
  HaloMode mode;
  int depth;
};

class HaloModes : public ::testing::TestWithParam<HaloCase> {};

// Run a 2-D halo exchange on a 3x3 periodic process grid with nloc x nloc
// interiors and verify every padded cell against the owner oracle.
void check_halo_2d(HaloMode mode, int depth, int nloc,
                   const std::vector<int>& periods) {
  const std::vector<int> pdims{3, 3};
  mpl::run(9, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    Field<int> f({nloc, nloc}, depth);
    const auto my = topo.grid().coords_of(world.rank());
    // Fill interior with global-coordinate values.
    for (int i = 0; i < nloc; ++i) {
      for (int j = 0; j < nloc; ++j) {
        const std::vector<int> g{my[0] * nloc + i, my[1] * nloc + j};
        f.at(depth + i, depth + j) = cell_value(g);
      }
    }
    HaloExchange hx(world, pdims, periods, f, mode);
    hx.exchange();

    const int gx = 3 * nloc, gy = 3 * nloc;
    for (int pi = 0; pi < nloc + 2 * depth; ++pi) {
      for (int pj = 0; pj < nloc + 2 * depth; ++pj) {
        // Global coordinates of this padded cell.
        int gi = my[0] * nloc + (pi - depth);
        int gj = my[1] * nloc + (pj - depth);
        const bool off_i = gi < 0 || gi >= gx;
        const bool off_j = gj < 0 || gj >= gy;
        const bool wrap_i = periods.empty() || periods[0] != 0;
        const bool wrap_j = periods.empty() || periods[1] != 0;
        if ((off_i && !wrap_i) || (off_j && !wrap_j)) {
          ASSERT_EQ(f.at(pi, pj), 0) << "ghost off the mesh must stay zero at ("
                                     << pi << "," << pj << ")";
          continue;
        }
        gi = ((gi % gx) + gx) % gx;
        gj = ((gj % gy) + gy) % gy;
        const std::vector<int> g{gi, gj};
        ASSERT_EQ(f.at(pi, pj), cell_value(g))
            << "rank " << world.rank() << " padded (" << pi << "," << pj << ")";
      }
    }
  });
}

}  // namespace

TEST(BoxType, SelectsSubMatrix) {
  const std::vector<int> padded{4, 5};
  const std::vector<int> lo{1, 2};
  const std::vector<int> hi{3, 5};
  mpl::Datatype t = stencil::box_type(padded, lo, hi, mpl::Datatype::of<int>());
  EXPECT_EQ(t.size(), 2u * 3u * sizeof(int));
  std::vector<int> m(20);
  std::iota(m.begin(), m.end(), 0);
  std::vector<std::byte> buf(t.pack_size(1));
  t.pack(m.data(), 1, buf.data());
  const int* p = reinterpret_cast<const int*>(buf.data());
  EXPECT_EQ(p[0], 7);
  EXPECT_EQ(p[1], 8);
  EXPECT_EQ(p[2], 9);
  EXPECT_EQ(p[3], 12);
  EXPECT_EQ(p[4], 13);
  EXPECT_EQ(p[5], 14);
}

TEST(BoxType, EmptyBox) {
  const std::vector<int> padded{4, 4};
  const std::vector<int> lo{2, 2};
  const std::vector<int> hi{2, 4};
  mpl::Datatype t = stencil::box_type(padded, lo, hi, mpl::Datatype::of<int>());
  EXPECT_EQ(t.size(), 0u);
}

TEST(BoxType, ThreeDimensional) {
  const std::vector<int> padded{3, 3, 3};
  const std::vector<int> lo{1, 1, 1};
  const std::vector<int> hi{3, 3, 3};
  mpl::Datatype t =
      stencil::box_type(padded, lo, hi, mpl::Datatype::of<double>());
  EXPECT_EQ(t.size(), 8 * sizeof(double));
  EXPECT_EQ(t.block_count(), 4u);  // 2x2 rows of length 2
}

TEST(FieldT, IndexingAndZeroInit) {
  Field<double> f({4, 6}, 2);
  EXPECT_EQ(f.ndims(), 2);
  EXPECT_EQ(f.padded()[0], 8);
  EXPECT_EQ(f.padded()[1], 10);
  EXPECT_EQ(f.size(), 80u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 0.0);
  f.at(3, 4) = 2.5;
  const std::vector<int> idx{3, 4};
  EXPECT_DOUBLE_EQ(f.at(idx), 2.5);
}

TEST(FieldT, Validation) {
  EXPECT_THROW(Field<int>({}, 1), mpl::Error);
  EXPECT_THROW(Field<int>({0, 3}, 1), mpl::Error);
  EXPECT_THROW(Field<int>({3, 3}, -1), mpl::Error);
}

TEST_P(HaloModes, PeriodicGrid) {
  const auto [mode, depth] = GetParam();
  check_halo_2d(mode, depth, 6, {1, 1});
}

TEST_P(HaloModes, OpenMesh) {
  const auto [mode, depth] = GetParam();
  check_halo_2d(mode, depth, 6, {0, 0});
}

TEST_P(HaloModes, Cylinder) {
  const auto [mode, depth] = GetParam();
  check_halo_2d(mode, depth, 6, {1, 0});
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndDepths, HaloModes,
    ::testing::Values(HaloCase{HaloMode::alltoallw, 1},
                      HaloCase{HaloMode::alltoallw, 2},
                      HaloCase{HaloMode::combined, 1},
                      HaloCase{HaloMode::combined, 2},
                      HaloCase{HaloMode::combined, 3}));

TEST(Halo, CombinedSavesVolumeSameRounds) {
  mpl::run(9, [](mpl::Comm& world) {
    const std::vector<int> pdims{3, 3};
    const std::vector<int> periods{1, 1};
    Field<double> f({8, 8}, 2);
    HaloExchange plain(world, pdims, periods, f, HaloMode::alltoallw,
                       cartcomm::Algorithm::combining);
    HaloExchange comb(world, pdims, periods, f, HaloMode::combined);
    ASSERT_GT(plain.send_bytes(), 0);
    EXPECT_LT(comb.send_bytes(), plain.send_bytes());
    EXPECT_EQ(comb.rounds(), plain.rounds());  // coalescing keeps C = 2d
    EXPECT_EQ(comb.rounds(), 4);
  });
}

TEST(Halo, ThreeDimensionalCombinedMatchesPlain) {
  // The generalized Section 3.4 decomposition in 3-D (faces + 12 edge
  // regions + 8 vertex regions) must produce exactly the same halo as the
  // plain Moore-shell alltoallw.
  // (On a width-2 torus the +1/-1 rounds would be offset-congruent and
  // fuse to d rounds; width 3 keeps the canonical 2d-round structure.)
  const std::vector<int> pdims{3, 3, 3};
  const std::vector<int> periods{1, 1, 1};
  mpl::run(27, [&](mpl::Comm& world) {
    const int nloc = 6;
    Field<int> a({nloc, nloc, nloc}, 2);
    Field<int> b({nloc, nloc, nloc}, 2);
    for (std::size_t j = 0; j < a.size(); ++j) {
      a.data()[j] = b.data()[j] = 0;
    }
    std::vector<int> idx(3);
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());
    for (idx[0] = 2; idx[0] < nloc + 2; ++idx[0]) {
      for (idx[1] = 2; idx[1] < nloc + 2; ++idx[1]) {
        for (idx[2] = 2; idx[2] < nloc + 2; ++idx[2]) {
          std::vector<int> gc(3);
          for (int k = 0; k < 3; ++k) {
            gc[static_cast<std::size_t>(k)] =
                my[static_cast<std::size_t>(k)] * nloc + idx[static_cast<std::size_t>(k)] - 2;
          }
          a.at(idx) = b.at(idx) = cell_value(gc);
        }
      }
    }
    HaloExchange plain(world, pdims, periods, a, HaloMode::alltoallw);
    HaloExchange comb(world, pdims, periods, b, HaloMode::combined);
    plain.exchange();
    comb.exchange();
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a.data()[j], b.data()[j]) << "cell " << j;
    }
    // Section 3.4 payoff: fewer bytes, same round count (2d).
    EXPECT_LT(comb.send_bytes(), plain.send_bytes());
    EXPECT_EQ(comb.rounds(), 6);
  });
}

TEST(Halo, ThreeDimensionalAlltoallw) {
  const std::vector<int> pdims{2, 2, 2};
  mpl::run(8, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, {});
    const int nloc = 4;
    Field<int> f({nloc, nloc, nloc}, 1);
    const auto my = topo.grid().coords_of(world.rank());
    for (int i = 0; i < nloc; ++i) {
      for (int j = 0; j < nloc; ++j) {
        for (int k = 0; k < nloc; ++k) {
          const std::vector<int> g{my[0] * nloc + i, my[1] * nloc + j,
                                   my[2] * nloc + k};
          const std::vector<int> idx{1 + i, 1 + j, 1 + k};
          f.at(idx) = cell_value(g);
        }
      }
    }
    HaloExchange hx(world, pdims, {}, f, HaloMode::alltoallw);
    hx.exchange();
    // Spot-check all 26 ghost directions through the corner cell test:
    // every padded cell must match the owner oracle.
    const int n = nloc, gx = 2 * nloc;
    std::vector<int> idx(3);
    for (idx[0] = 0; idx[0] < n + 2; ++idx[0]) {
      for (idx[1] = 0; idx[1] < n + 2; ++idx[1]) {
        for (idx[2] = 0; idx[2] < n + 2; ++idx[2]) {
          std::vector<int> g(3);
          for (int k = 0; k < 3; ++k) {
            g[static_cast<std::size_t>(k)] =
                ((my[static_cast<std::size_t>(k)] * nloc + idx[static_cast<std::size_t>(k)] - 1) % gx + gx) % gx;
          }
          ASSERT_EQ(f.at(idx), cell_value(g));
        }
      }
    }
  });
}

TEST(Decomposition, IndexMathRoundTrips) {
  stencil::Decomposition dec({12, 8}, {3, 2});
  EXPECT_EQ(dec.local()[0], 4);
  EXPECT_EQ(dec.local()[1], 4);
  const std::vector<int> pc{2, 1};
  const std::vector<int> li{3, 0};
  const std::vector<int> g = dec.global_of(pc, li);
  EXPECT_EQ(g, (std::vector<int>{11, 4}));
  EXPECT_EQ(dec.owner(g), pc);
  EXPECT_EQ(dec.local_of(g), li);
}

TEST(Decomposition, RejectsUnevenBlocks) {
  EXPECT_THROW(stencil::Decomposition({10, 8}, {3, 2}), mpl::Error);
}

TEST(ApplyStencil, LaplacianOfQuadratic) {
  // 5-point Laplacian of f(x,y) = x^2 is exactly 2 in the interior.
  stencil::Field<double> u({6, 6}, 1);
  stencil::Field<double> out({6, 6}, 1);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) u.at(i, j) = static_cast<double>(i * i);
  }
  const cartcomm::Neighborhood nb = cartcomm::Neighborhood::von_neumann(2, true);
  // von_neumann(include_self) order: self, (-1,0), (1,0), (0,-1), (0,1).
  const std::vector<double> w{-4.0, 1.0, 1.0, 1.0, 1.0};
  stencil::apply_stencil(u, out, nb, w);
  for (int i = 1; i <= 6; ++i) {
    for (int j = 1; j <= 6; ++j) {
      EXPECT_DOUBLE_EQ(out.at(i, j), 2.0) << i << "," << j;
    }
  }
}

TEST(ApplyStencil, MooreAverageConservesConstant) {
  stencil::Field<float> u({4, 4, 4}, 1);
  stencil::Field<float> out({4, 4, 4}, 1);
  for (std::size_t j = 0; j < u.size(); ++j) u.data()[j] = 2.0f;
  const cartcomm::Neighborhood nb = cartcomm::Neighborhood::moore(3);
  std::vector<float> w(27, 1.0f / 27.0f);
  stencil::apply_stencil(u, out, nb, w);
  std::vector<int> idx{2, 2, 2};
  EXPECT_FLOAT_EQ(out.at(idx), 2.0f);
}

TEST(ApplyStencil, RejectsTooWideStencil) {
  stencil::Field<double> u({4, 4}, 1);
  stencil::Field<double> out({4, 4}, 1);
  const cartcomm::Neighborhood wide(2, {2, 0});
  const std::vector<double> w{1.0};
  EXPECT_THROW(stencil::apply_stencil(u, out, wide, w), mpl::Error);
}

TEST(ApplyStencil, DistributedShiftMatchesOracle) {
  // A pure shift stencil after a halo exchange moves the global field by
  // one cell, across process boundaries.
  const std::vector<int> pdims{2, 2};
  const std::vector<int> periods{1, 1};
  mpl::run(4, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());
    const int nloc = 4;
    stencil::Decomposition dec({8, 8}, pdims);
    stencil::Field<double> u({nloc, nloc}, 1);
    stencil::Field<double> out({nloc, nloc}, 1);
    for (int i = 0; i < nloc; ++i) {
      for (int j = 0; j < nloc; ++j) {
        const auto g = dec.global_of(my, std::vector<int>{i, j});
        u.at(1 + i, 1 + j) = g[0] * 100 + g[1];
      }
    }
    stencil::HaloExchange hx(world, pdims, periods, u, HaloMode::combined);
    hx.exchange();
    const cartcomm::Neighborhood shift(2, {1, 1});  // read down-right
    const std::vector<double> w{1.0};
    stencil::apply_stencil(u, out, shift, w);
    for (int i = 0; i < nloc; ++i) {
      for (int j = 0; j < nloc; ++j) {
        const auto g = dec.global_of(my, std::vector<int>{i, j});
        const int gi = (g[0] + 1) % 8, gj = (g[1] + 1) % 8;
        EXPECT_DOUBLE_EQ(out.at(1 + i, 1 + j), gi * 100 + gj);
      }
    }
  });
}

TEST(Halo, JacobiConvergesToLinearProfile) {
  // 1-D heat equation posed on a 2-D grid (3x1 process column): fixed
  // boundary values 0 and 1; Jacobi iteration must approach the linear
  // steady state. Exercises repeated persistent exchanges.
  const std::vector<int> pdims{3, 1};
  const std::vector<int> periods{0, 0};
  mpl::run(3, [&](mpl::Comm& world) {
    const int nloc = 4;           // 12 interior rows globally
    const int N = 3 * nloc;       // global rows
    Field<double> u({nloc, 4}, 1);
    Field<double> v({nloc, 4}, 1);
    HaloExchange hu(world, pdims, periods, u, HaloMode::alltoallw);
    HaloExchange hv(world, pdims, periods, v, HaloMode::alltoallw);

    auto fix_boundaries = [&](Field<double>& f) {
      if (world.rank() == 0) {
        for (int j = 0; j < 6; ++j) f.at(0, j) = 0.0;  // top boundary row
      }
      if (world.rank() == 2) {
        for (int j = 0; j < 6; ++j) f.at(nloc + 1, j) = 1.0;
      }
    };

    for (int iter = 0; iter < 400; ++iter) {
      Field<double>& src = (iter % 2 == 0) ? u : v;
      Field<double>& dst = (iter % 2 == 0) ? v : u;
      const HaloExchange& hx = (iter % 2 == 0) ? hu : hv;
      hx.exchange();
      fix_boundaries(src);
      for (int i = 1; i <= nloc; ++i) {
        for (int j = 1; j <= 4; ++j) {
          dst.at(i, j) = 0.5 * (src.at(i - 1, j) + src.at(i + 1, j));
        }
      }
    }
    // Steady state: u(row) = (global_row + 1) / (N + 1).
    for (int i = 1; i <= nloc; ++i) {
      const int grow = world.rank() * nloc + (i - 1);
      const double expect = static_cast<double>(grow + 1) / (N + 1);
      EXPECT_NEAR(u.at(i, 2), expect, 1e-2) << "row " << grow;
    }
  });
}
