// Cartesian collectives on non-periodic meshes: PROC_NULL boundaries,
// untouched receive slots, mixed periodicity. (The paper defines the
// periodic case and leaves meshes as a detail; this library supports them
// in both the trivial and the message-combining algorithms.)
#include <gtest/gtest.h>

#include <vector>

#include "cart_test_util.hpp"

using cartcomm::Algorithm;
using cartcomm::Neighborhood;
using carttest::check_allgather;
using carttest::check_alltoall;

TEST(NonPeriodic, Moore2DMeshAlltoall) {
  const std::vector<int> periods{0, 0};
  check_alltoall({3, 4}, periods, Neighborhood::moore(2), 3,
                 Algorithm::combining);
  check_alltoall({3, 4}, periods, Neighborhood::moore(2), 3, Algorithm::trivial);
}

TEST(NonPeriodic, Moore2DMeshAllgather) {
  const std::vector<int> periods{0, 0};
  check_allgather({3, 4}, periods, Neighborhood::moore(2), 3,
                  Algorithm::combining);
  check_allgather({3, 4}, periods, Neighborhood::moore(2), 3,
                  Algorithm::trivial);
}

TEST(NonPeriodic, MixedPeriodicity) {
  const std::vector<int> periods{1, 0};  // cylinder
  check_alltoall({3, 3}, periods, Neighborhood::moore(2), 2,
                 Algorithm::combining);
  check_allgather({3, 3}, periods, Neighborhood::moore(2), 2,
                  Algorithm::combining);
}

TEST(NonPeriodic, AsymmetricOffsetsOnMesh) {
  // Offsets up to +2 fall off a size-4 mesh from the upper processes.
  const std::vector<int> periods{0, 0};
  check_alltoall({4, 4}, periods, Neighborhood::stencil(2, 4, -1), 2,
                 Algorithm::combining);
  check_allgather({4, 4}, periods, Neighborhood::stencil(2, 4, -1), 2,
                  Algorithm::combining);
}

TEST(NonPeriodic, ThreeDimensionalMesh) {
  const std::vector<int> periods{0, 0, 0};
  check_alltoall({3, 2, 3}, periods, Neighborhood::stencil(3, 3, -1), 2,
                 Algorithm::combining);
  check_allgather({3, 2, 3}, periods, Neighborhood::stencil(3, 3, -1), 2,
                  Algorithm::combining);
}

TEST(NonPeriodic, MultiHopBlockCrossingBoundaryPath) {
  // A single 2-hop neighbor: for boundary processes the relay path leaves
  // the mesh; interior processes must still relay correctly.
  const std::vector<int> periods{0, 0};
  const Neighborhood nb(2, {2, 2, -2, -2, 1, 1});
  check_alltoall({5, 5}, periods, nb, 3, Algorithm::combining);
  check_allgather({5, 5}, periods, nb, 3, Algorithm::combining);
}

TEST(NonPeriodic, OneDimensionalChain) {
  const std::vector<int> periods{0};
  check_alltoall({6}, periods, Neighborhood(1, {-2, -1, 1, 2}), 2,
                 Algorithm::combining);
  check_allgather({6}, periods, Neighborhood(1, {-2, -1, 1, 2}), 2,
                  Algorithm::combining);
}

TEST(NonPeriodic, EveryoneIsolated) {
  // Offsets so large no process has any on-mesh neighbor.
  const std::vector<int> periods{0, 0};
  const Neighborhood nb(2, {10, 10, -10, -10});
  check_alltoall({2, 2}, periods, nb, 2, Algorithm::combining);
  check_allgather({2, 2}, periods, nb, 2, Algorithm::combining);
}

TEST(NonPeriodic, TrivialMatchesCombiningOnMesh) {
  mpl::run(16, [](mpl::Comm& world) {
    const std::vector<int> dims{4, 4};
    const std::vector<int> periods{0, 0};
    const Neighborhood nb = Neighborhood::stencil(2, 4, -1);
    auto cc = cartcomm::cart_neighborhood_create(world, dims, periods, nb);
    const int t = nb.count();
    const int m = 3;
    std::vector<int> sb(static_cast<std::size_t>(t) * m);
    for (std::size_t j = 0; j < sb.size(); ++j) {
      sb[j] = world.rank() * 4096 + static_cast<int>(j);
    }
    std::vector<int> r1(sb.size(), -5), r2(sb.size(), -5);
    cartcomm::alltoall(sb.data(), m, mpl::Datatype::of<int>(), r1.data(), m,
                       mpl::Datatype::of<int>(), cc, Algorithm::trivial);
    cartcomm::alltoall(sb.data(), m, mpl::Datatype::of<int>(), r2.data(), m,
                       mpl::Datatype::of<int>(), cc, Algorithm::combining);
    EXPECT_EQ(r1, r2);  // including identical untouched sentinels
  });
}
