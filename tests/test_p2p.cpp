// Point-to-point semantics: blocking/non-blocking, matching, wildcards,
// ordering, self-messages, errors.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpl/mpl.hpp"

using mpl::Comm;
using mpl::Datatype;

namespace {
const Datatype kInt = Datatype::of<int>();
}

TEST(P2P, BlockingSendRecv) {
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int v = 42;
      c.send(&v, 1, kInt, 1, 5);
    } else {
      int v = 0;
      mpl::Status st = c.recv(&v, 1, kInt, 0, 5);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, sizeof(int));
    }
  });
}

TEST(P2P, NonblockingPair) {
  mpl::run(2, [](Comm& c) {
    std::vector<int> out(16), in(16, -1);
    std::iota(out.begin(), out.end(), c.rank() * 100);
    const int peer = 1 - c.rank();
    mpl::Request r = c.irecv(in.data(), 16, kInt, peer);
    c.isend(out.data(), 16, kInt, peer);
    r.wait();
    EXPECT_EQ(in[0], peer * 100);
    EXPECT_EQ(in[15], peer * 100 + 15);
  });
}

TEST(P2P, MessageOrderingFifoPerPair) {
  mpl::run(2, [](Comm& c) {
    constexpr int kN = 50;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send(&i, 1, kInt, 1, 3);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(&v, 1, kInt, 0, 3);
        EXPECT_EQ(v, i);  // same (source, tag): delivered in send order
      }
    }
  });
}

TEST(P2P, TagSelectsMessage) {
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int a = 1, b = 2;
      c.send(&a, 1, kInt, 1, 10);
      c.send(&b, 1, kInt, 1, 20);
    } else {
      int v = 0;
      c.recv(&v, 1, kInt, 0, 20);  // pick the later-tagged message first
      EXPECT_EQ(v, 2);
      c.recv(&v, 1, kInt, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2P, AnySourceWildcard) {
  mpl::run(3, [](Comm& c) {
    if (c.rank() != 0) {
      const int v = c.rank();
      c.send(&v, 1, kInt, 0, 1);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        mpl::Status st = c.recv(&v, 1, kInt, mpl::ANY_SOURCE, 1);
        EXPECT_EQ(st.source, v);
        sum += v;
      }
      EXPECT_EQ(sum, 3);
    }
  });
}

TEST(P2P, AnyTagWildcard) {
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int v = 77;
      c.send(&v, 1, kInt, 1, 123);
    } else {
      int v = 0;
      mpl::Status st = c.recv(&v, 1, kInt, 0, mpl::ANY_TAG);
      EXPECT_EQ(st.tag, 123);
      EXPECT_EQ(v, 77);
    }
  });
}

TEST(P2P, SelfMessage) {
  mpl::run(1, [](Comm& c) {
    const int out = 9;
    int in = 0;
    mpl::Request r = c.irecv(&in, 1, kInt, 0, 2);
    c.isend(&out, 1, kInt, 0, 2);
    r.wait();
    EXPECT_EQ(in, 9);
  });
}

TEST(P2P, BlockingSelfSendIsEager) {
  // MPI programs may send-to-self before receiving only if the send is
  // buffered; our transport is always eager.
  mpl::run(1, [](Comm& c) {
    const int out = 5;
    c.send(&out, 1, kInt, 0, 0);
    int in = 0;
    c.recv(&in, 1, kInt, 0, 0);
    EXPECT_EQ(in, 5);
  });
}

TEST(P2P, SendToProcNullIsNoop) {
  mpl::run(1, [](Comm& c) {
    const int v = 1;
    c.send(&v, 1, kInt, mpl::PROC_NULL, 0);  // must not hang or deliver
    int in = 0;
    mpl::Status st = c.recv(&in, 1, kInt, mpl::PROC_NULL, 0);
    EXPECT_EQ(st.source, mpl::PROC_NULL);
    EXPECT_EQ(st.bytes, 0u);
  });
}

TEST(P2P, SendrecvExchanges) {
  mpl::run(2, [](Comm& c) {
    const int out = c.rank() + 10;
    int in = -1;
    const int peer = 1 - c.rank();
    c.sendrecv(&out, 1, kInt, peer, 0, &in, 1, kInt, peer, 0);
    EXPECT_EQ(in, peer + 10);
  });
}

TEST(P2P, SendrecvRingManyRounds) {
  mpl::run(5, [](Comm& c) {
    const int p = c.size();
    int token = c.rank();
    for (int round = 0; round < 3 * p; ++round) {
      int in = -1;
      c.sendrecv(&token, 1, kInt, (c.rank() + 1) % p, 0, &in, 1, kInt,
                 (c.rank() - 1 + p) % p, 0);
      token = in;
    }
    EXPECT_EQ(token, c.rank());  // token returned home after multiples of p
  });
}

TEST(P2P, DatatypeConversionAcrossSend) {
  // Send a strided column, receive it contiguously.
  mpl::run(2, [](Comm& c) {
    constexpr int N = 4;
    if (c.rank() == 0) {
      std::vector<int> m(N * N);
      std::iota(m.begin(), m.end(), 0);
      Datatype col = Datatype::vector(N, 1, N, kInt);
      c.send(m.data() + 2, 1, col, 1, 0);  // third column
    } else {
      std::vector<int> col(N, -1);
      c.recv(col.data(), N, kInt, 0, 0);
      EXPECT_EQ(col[0], 2);
      EXPECT_EQ(col[1], 6);
      EXPECT_EQ(col[2], 10);
      EXPECT_EQ(col[3], 14);
    }
  });
}

TEST(P2P, ShorterMessageIntoLargerReceive) {
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const int v[2] = {1, 2};
      c.send(v, 2, kInt, 1, 0);
    } else {
      std::vector<int> in(8, -1);
      mpl::Status st = c.recv(in.data(), 8, kInt, 0, 0);
      EXPECT_EQ(st.bytes, 2 * sizeof(int));
      EXPECT_EQ(in[0], 1);
      EXPECT_EQ(in[1], 2);
      EXPECT_EQ(in[2], -1);
    }
  });
}

TEST(P2P, TruncationIsAnError) {
  EXPECT_THROW(mpl::run(2,
                        [](Comm& c) {
                          if (c.rank() == 0) {
                            const int v[4] = {1, 2, 3, 4};
                            c.send(v, 4, kInt, 1, 0);
                          } else {
                            int in = 0;
                            c.recv(&in, 1, kInt, 0, 0);
                          }
                        }),
               mpl::Error);
}

TEST(P2P, InvalidRankThrows) {
  EXPECT_THROW(mpl::run(2,
                        [](Comm& c) {
                          const int v = 0;
                          c.send(&v, 1, kInt, 7, 0);
                        }),
               mpl::Error);
}

TEST(P2P, NegativeUserTagThrows) {
  EXPECT_THROW(mpl::run(1,
                        [](Comm& c) {
                          const int v = 0;
                          c.send(&v, 1, kInt, 0, -3);
                        }),
               mpl::Error);
}

TEST(P2P, TestPollsCompletion) {
  mpl::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      int in = -1;
      mpl::Request r = c.irecv(&in, 1, kInt, 1, 0);
      mpl::Status st;
      while (!r.test(&st)) {
        std::this_thread::yield();
      }
      EXPECT_EQ(in, 33);
      EXPECT_EQ(st.bytes, sizeof(int));
    } else {
      const int v = 33;
      c.send(&v, 1, kInt, 0, 0);
    }
  });
}

TEST(P2P, WaitAllManyRequests) {
  mpl::run(4, [](Comm& c) {
    const int p = c.size();
    std::vector<int> in(static_cast<std::size_t>(p), -1);
    std::vector<mpl::Request> reqs;
    for (int i = 0; i < p; ++i) {
      if (i == c.rank()) continue;
      reqs.push_back(c.irecv(&in[static_cast<std::size_t>(i)], 1, kInt, i, 0));
    }
    const int v = c.rank();
    for (int i = 0; i < p; ++i) {
      if (i == c.rank()) continue;
      c.isend(&v, 1, kInt, i, 0);
    }
    std::vector<mpl::Status> sts(reqs.size());
    mpl::wait_all(reqs, sts);
    for (int i = 0; i < p; ++i) {
      if (i == c.rank()) continue;
      EXPECT_EQ(in[static_cast<std::size_t>(i)], i);
    }
  });
}

TEST(P2P, LargePayload) {
  mpl::run(2, [](Comm& c) {
    constexpr std::size_t kN = 1 << 20;  // 4 MiB of ints
    if (c.rank() == 0) {
      std::vector<int> big(kN);
      std::iota(big.begin(), big.end(), 0);
      c.send(big.data(), static_cast<int>(kN), kInt, 1, 0);
    } else {
      std::vector<int> big(kN, -1);
      c.recv(big.data(), static_cast<int>(kN), kInt, 0, 0);
      EXPECT_EQ(big[0], 0);
      EXPECT_EQ(big[kN - 1], static_cast<int>(kN) - 1);
    }
  });
}

TEST(P2P, ExceptionInOneProcessAbortsRun) {
  EXPECT_THROW(mpl::run(2,
                        [](Comm& c) {
                          if (c.rank() == 0) {
                            throw std::logic_error("boom");
                          }
                          int v;
                          c.recv(&v, 1, kInt, 0, 0);  // would block forever
                        }),
               std::logic_error);
}
