// Network cost model: virtual-clock laws, determinism, single-port
// serialization, jitter.
#include <gtest/gtest.h>

#include <vector>

#include "mpl/mpl.hpp"

using mpl::Comm;
using mpl::Datatype;
using mpl::NetConfig;

namespace {

const Datatype kInt = Datatype::of<int>();

NetConfig simple_model(double o, double L, double G) {
  NetConfig c;
  c.enabled = true;
  c.o = o;
  c.L = L;
  c.G = G;
  return c;
}

}  // namespace

TEST(NetClock, PostAndCompleteLaws) {
  mpl::NetClock clk;
  NetConfig cfg = simple_model(1.0, 10.0, 0.5);
  clk.configure(cfg, 0);
  EXPECT_TRUE(clk.enabled());
  EXPECT_DOUBLE_EQ(clk.now(), 0.0);

  const double depart = clk.post_send(4);
  EXPECT_DOUBLE_EQ(clk.now(), 1.0);   // overhead charged
  EXPECT_DOUBLE_EQ(depart, 1.0);      // port free immediately

  // A second send waits for the port: busy until depart + G*bytes = 3.0.
  const double depart2 = clk.post_send(4);
  EXPECT_DOUBLE_EQ(clk.now(), 2.0);
  EXPECT_DOUBLE_EQ(depart2, 3.0);

  clk.post_recv();
  EXPECT_DOUBLE_EQ(clk.now(), 3.0);

  // Arrival: depart + L through the receive port, then G*bytes.
  const double done = clk.complete_recv(5.0, 4, false);
  EXPECT_DOUBLE_EQ(done, 5.0 + 10.0 + 2.0);
  clk.advance_to(done);
  EXPECT_DOUBLE_EQ(clk.now(), 17.0);
}

TEST(NetClock, SelfMessageUsesCopyCost) {
  mpl::NetClock clk;
  NetConfig cfg = simple_model(0.0, 10.0, 0.5);
  cfg.copy = 0.25;
  clk.configure(cfg, 0);
  const double done = clk.complete_recv(2.0, 8, /*from_self=*/true);
  EXPECT_DOUBLE_EQ(done, 2.0 + 0.25 * 8);  // no latency, no port time
}

TEST(NetClock, ReceivePortSerializesArrivals) {
  mpl::NetClock clk;
  clk.configure(simple_model(0.0, 1.0, 1.0), 0);
  // Two messages departing at t=0: second must queue behind the first.
  const double d1 = clk.complete_recv(0.0, 10, false);
  const double d2 = clk.complete_recv(0.0, 10, false);
  EXPECT_DOUBLE_EQ(d1, 11.0);
  EXPECT_DOUBLE_EQ(d2, 21.0);
}

TEST(NetClock, ResetClearsAllState) {
  mpl::NetClock clk;
  clk.configure(simple_model(1.0, 1.0, 1.0), 0);
  clk.post_send(100);
  clk.reset();
  EXPECT_DOUBLE_EQ(clk.now(), 0.0);
  EXPECT_DOUBLE_EQ(clk.post_send(1), 1.0);  // send port also reset
}

TEST(NetModel, DisabledClocksStayAtZero) {
  mpl::run(2, [](Comm& c) {
    const int v = c.rank();
    int in = -1;
    const int peer = 1 - c.rank();
    c.sendrecv(&v, 1, kInt, peer, 0, &in, 1, kInt, peer, 0);
    EXPECT_FALSE(c.model_enabled());
    EXPECT_DOUBLE_EQ(c.vclock(), 0.0);
  });
}

TEST(NetModel, PingPongCostIsExact) {
  mpl::RunOptions opts;
  opts.net = simple_model(1e-6, 5e-6, 1e-9);
  mpl::run(
      2,
      [](Comm& c) {
        const int bytes = sizeof(int);
        const int v = 3;
        int in = -1;
        if (c.rank() == 0) {
          c.send(&v, 1, kInt, 1, 0);
          c.recv(&in, 1, kInt, 1, 0);
          // Closed form of the round trip: the reply departs from the peer
          // at 2o + L + G*b (its two posting overheads plus the forward
          // message), and arrives here L + G*b later:
          //   t = 2o + 2L + 2G*bytes
          const double expect = 2e-6 + 10e-6 + 2e-9 * bytes;
          EXPECT_NEAR(c.vclock(), expect, 1e-12);
        } else {
          c.recv(&in, 1, kInt, 0, 0);
          c.send(&in, 1, kInt, 0, 0);
        }
      },
      opts);
}

TEST(NetModel, DeterministicAcrossRuns) {
  auto run_once = [] {
    mpl::RunOptions opts;
    opts.net = NetConfig::omnipath();
    std::vector<double> clocks(8, 0.0);
    mpl::run(
        8,
        [&](Comm& c) {
          std::vector<int> out(16, c.rank()), in(16);
          for (int round = 0; round < 5; ++round) {
            const int to = (c.rank() + round + 1) % c.size();
            const int from = (c.rank() - round - 1 + c.size()) % c.size();
            c.sendrecv(out.data(), 16, kInt, to, 0, in.data(), 16, kInt, from, 0);
          }
          clocks[static_cast<std::size_t>(c.rank())] = c.vclock();
        },
        opts);
    return clocks;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bitwise identical regardless of thread scheduling
  EXPECT_GT(a[0], 0.0);
}

TEST(NetModel, MoreMessagesCostMore) {
  // t messages of size m must cost more than 1 message of size t*m when
  // the per-message overhead dominates — the premise of message combining.
  auto measure = [](int nmsg, int ints_per_msg) {
    double result = 0.0;
    mpl::RunOptions opts;
    opts.net = NetConfig::omnipath();
    mpl::run(
        2,
        [&](Comm& c) {
          // Distinct buffers: the peer's delivery unpacks into recvbuf while
          // this rank is still packing sends — aliasing them is a data race
          // (MPI likewise forbids overlapping send/recv buffers).
          std::vector<int> sendbuf(64 * 1024);
          std::vector<int> recvbuf(64 * 1024);
          const int peer = 1 - c.rank();
          std::vector<mpl::Request> reqs;
          for (int i = 0; i < nmsg; ++i) {
            reqs.push_back(c.irecv(recvbuf.data() + i * ints_per_msg,
                                   ints_per_msg, kInt, peer, 1));
          }
          for (int i = 0; i < nmsg; ++i) {
            c.isend(sendbuf.data() + i * ints_per_msg, ints_per_msg, kInt, peer,
                    1);
          }
          mpl::wait_all(reqs);
          if (c.rank() == 0) result = c.vclock();
        },
        opts);
    return result;
  };
  const double many_small = measure(100, 10);
  const double one_big = measure(1, 1000);
  EXPECT_GT(many_small, 2.0 * one_big);
}

TEST(NetModel, JitterProducesSpreadButKeepsOrder) {
  NetConfig cfg = simple_model(0.0, 1.0, 0.0);
  cfg.jitter = 0.5;
  mpl::NetClock clk;
  clk.configure(cfg, 3);
  double min_l = 1e30, max_l = -1e30;
  for (int i = 0; i < 200; ++i) {
    const double done = clk.complete_recv(0.0, 0, false);
    min_l = std::min(min_l, done);
    max_l = std::max(max_l, done);
    clk.reset();
  }
  EXPECT_GE(min_l, 1.0);        // jitter only ever adds latency
  EXPECT_GT(max_l, min_l + 0.1);  // and produces real spread
}

TEST(NetModel, TailStallsAppearWithGivenProbability) {
  NetConfig cfg = simple_model(0.0, 1.0, 0.0);
  cfg.tail_prob = 0.2;
  cfg.tail = 100.0;
  mpl::NetClock clk;
  clk.configure(cfg, 1);
  int stalls = 0;
  for (int i = 0; i < 1000; ++i) {
    if (clk.complete_recv(0.0, 0, false) > 50.0) ++stalls;
    clk.reset();
  }
  EXPECT_GT(stalls, 120);
  EXPECT_LT(stalls, 280);
}

TEST(NetModel, VclockResetSyncZeroesEveryProcess) {
  mpl::RunOptions opts;
  opts.net = NetConfig::gemini();
  mpl::run(
      4,
      [](Comm& c) {
        mpl::barrier(c);
        EXPECT_GT(c.vclock(), 0.0);
        c.vclock_reset_sync();
        EXPECT_DOUBLE_EQ(c.vclock(), 0.0);
      },
      opts);
}

TEST(NetModel, ProfilesAreOrdered) {
  const NetConfig omni = NetConfig::omnipath();
  const NetConfig gem = NetConfig::gemini();
  EXPECT_TRUE(omni.enabled);
  EXPECT_TRUE(gem.enabled);
  EXPECT_LT(omni.L, gem.L);  // OmniPath is the lower-latency fabric
  EXPECT_LT(omni.G, gem.G);
  EXPECT_FALSE(NetConfig::off().enabled);
}
