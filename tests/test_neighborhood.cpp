// Neighborhood collectives (the paper's MPI baselines) against references.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpl/mpl.hpp"

using mpl::Comm;
using mpl::Datatype;
using mpl::DistGraphComm;
using mpl::NeighborAlgorithm;

namespace {

const Datatype kInt = Datatype::of<int>();

// Directed ring graph: receive from left, send to right.
DistGraphComm make_ring(const Comm& c) {
  const std::vector<int> sources{(c.rank() - 1 + c.size()) % c.size()};
  const std::vector<int> targets{(c.rank() + 1) % c.size()};
  return mpl::dist_graph_create_adjacent(c, sources, {}, targets, {});
}

// Fully populated Moore-style ring of width 2 in both directions, with a
// duplicate neighbor to exercise FIFO disambiguation.
DistGraphComm make_multi(const Comm& c) {
  const int p = c.size();
  const int r = c.rank();
  const std::vector<int> targets{(r + 1) % p, (r + 2) % p, (r + 1) % p};
  const std::vector<int> sources{(r - 1 + p) % p, (r - 2 + p) % p, (r - 1 + p) % p};
  return mpl::dist_graph_create_adjacent(c, sources, {}, targets, {});
}

class NeighborhoodAlg
    : public ::testing::TestWithParam<NeighborAlgorithm> {};

}  // namespace

TEST_P(NeighborhoodAlg, AlltoallOnRing) {
  const auto alg = GetParam();
  mpl::run(5, [alg](Comm& c) {
    DistGraphComm g = make_ring(c);
    const int out = c.rank() * 7;
    int in = -1;
    mpl::neighbor_alltoall(&out, 1, kInt, &in, 1, kInt, g, alg);
    EXPECT_EQ(in, ((c.rank() - 1 + c.size()) % c.size()) * 7);
  });
}

TEST_P(NeighborhoodAlg, AlltoallWithDuplicateNeighbors) {
  const auto alg = GetParam();
  mpl::run(5, [alg](Comm& c) {
    DistGraphComm g = make_multi(c);
    // Distinct payload per target slot; duplicates must arrive in order.
    const std::vector<int> out{c.rank() * 10 + 0, c.rank() * 10 + 1,
                               c.rank() * 10 + 2};
    std::vector<int> in(3, -1);
    mpl::neighbor_alltoall(out.data(), 1, kInt, in.data(), 1, kInt, g, alg);
    const int p = c.size();
    const int left = (c.rank() - 1 + p) % p;
    const int left2 = (c.rank() - 2 + p) % p;
    EXPECT_EQ(in[0], left * 10 + 0);
    EXPECT_EQ(in[1], left2 * 10 + 1);
    EXPECT_EQ(in[2], left * 10 + 2);
  });
}

TEST_P(NeighborhoodAlg, AlltoallvRaggedBlocks) {
  const auto alg = GetParam();
  mpl::run(4, [alg](Comm& c) {
    DistGraphComm g = make_ring(c);
    // Send rank+1 ints to the right; receive left's size.
    const int p = c.size();
    const int left = (c.rank() - 1 + p) % p;
    std::vector<int> sbuf(static_cast<std::size_t>(c.rank() + 1), c.rank());
    std::vector<int> rbuf(static_cast<std::size_t>(left + 1), -1);
    const std::vector<int> scount{c.rank() + 1}, sdisp{0};
    const std::vector<int> rcount{left + 1}, rdisp{0};
    mpl::neighbor_alltoallv(sbuf.data(), scount, sdisp, kInt, rbuf.data(),
                            rcount, rdisp, kInt, g, alg);
    for (int v : rbuf) EXPECT_EQ(v, left);
  });
}

TEST_P(NeighborhoodAlg, AlltoallwDistinctTypes) {
  const auto alg = GetParam();
  mpl::run(4, [alg](Comm& c) {
    DistGraphComm g = make_ring(c);
    // Send a strided column; receive contiguous.
    constexpr int N = 4;
    std::vector<int> m(N * N);
    std::iota(m.begin(), m.end(), c.rank() * 100);
    std::vector<int> in(N, -1);
    Datatype col = Datatype::vector(N, 1, N, kInt);
    const std::vector<int> scount{1}, rcount{N};
    const std::vector<std::ptrdiff_t> sdisp{static_cast<std::ptrdiff_t>(sizeof(int))};
    const std::vector<std::ptrdiff_t> rdisp{0};
    const std::vector<Datatype> stypes{col}, rtypes{kInt};
    mpl::neighbor_alltoallw(m.data(), scount, sdisp, stypes, in.data(), rcount,
                            rdisp, rtypes, g, alg);
    const int p = c.size();
    const int left = (c.rank() - 1 + p) % p;
    EXPECT_EQ(in[0], left * 100 + 1);
    EXPECT_EQ(in[1], left * 100 + 5);
    EXPECT_EQ(in[2], left * 100 + 9);
    EXPECT_EQ(in[3], left * 100 + 13);
  });
}

TEST_P(NeighborhoodAlg, AllgatherSameBlockToAllTargets) {
  const auto alg = GetParam();
  mpl::run(6, [alg](Comm& c) {
    DistGraphComm g = make_multi(c);
    const int out[2] = {c.rank(), c.rank() + 50};
    std::vector<int> in(6, -1);
    mpl::neighbor_allgather(out, 2, kInt, in.data(), 2, kInt, g, alg);
    const int p = c.size();
    const int left = (c.rank() - 1 + p) % p;
    const int left2 = (c.rank() - 2 + p) % p;
    EXPECT_EQ(in[0], left);
    EXPECT_EQ(in[1], left + 50);
    EXPECT_EQ(in[2], left2);
    EXPECT_EQ(in[3], left2 + 50);
    EXPECT_EQ(in[4], left);
    EXPECT_EQ(in[5], left + 50);
  });
}

TEST_P(NeighborhoodAlg, AllgathervDisplacements) {
  const auto alg = GetParam();
  mpl::run(4, [alg](Comm& c) {
    DistGraphComm g = make_ring(c);
    const int out = c.rank() + 1;
    std::vector<int> in(4, 0);
    const std::vector<int> counts{1};
    const std::vector<int> displs{2};  // land the block at element 2
    mpl::neighbor_allgatherv(&out, 1, kInt, in.data(), counts, displs, kInt, g,
                             alg);
    const int left = (c.rank() - 1 + c.size()) % c.size();
    EXPECT_EQ(in[2], left + 1);
    EXPECT_EQ(in[0], 0);
  });
}

TEST_P(NeighborhoodAlg, AllgatherwPerSourceTypes) {
  const auto alg = GetParam();
  mpl::run(4, [alg](Comm& c) {
    DistGraphComm g = make_ring(c);
    // Receive the single int block scattered as a strided column.
    constexpr int N = 3;
    const int out[N] = {c.rank(), c.rank() + 1, c.rank() + 2};
    std::vector<int> m(N * N, -1);
    Datatype col = Datatype::vector(N, 1, N, kInt);
    const std::vector<int> counts{1};
    const std::vector<std::ptrdiff_t> displs{0};
    const std::vector<Datatype> types{col};
    mpl::neighbor_allgatherw(out, N, kInt, m.data(), counts, displs, types, g,
                             alg);
    const int left = (c.rank() - 1 + c.size()) % c.size();
    EXPECT_EQ(m[0], left);
    EXPECT_EQ(m[3], left + 1);
    EXPECT_EQ(m[6], left + 2);
    EXPECT_EQ(m[1], -1);
  });
}

INSTANTIATE_TEST_SUITE_P(Algorithms, NeighborhoodAlg,
                         ::testing::Values(NeighborAlgorithm::direct,
                                           NeighborAlgorithm::serialized_rendezvous));

TEST(Neighborhood, NonblockingAlltoall) {
  mpl::run(5, [](Comm& c) {
    DistGraphComm g = make_ring(c);
    const int out = c.rank();
    int in = -1;
    mpl::NeighborRequest r =
        mpl::ineighbor_alltoall(&out, 1, kInt, &in, 1, kInt, g);
    r.wait();
    EXPECT_EQ(in, (c.rank() - 1 + c.size()) % c.size());
  });
}

TEST(Neighborhood, NonblockingAllgather) {
  mpl::run(5, [](Comm& c) {
    DistGraphComm g = make_multi(c);
    const int out = c.rank();
    std::vector<int> in(3, -1);
    mpl::NeighborRequest r =
        mpl::ineighbor_allgather(&out, 1, kInt, in.data(), 1, kInt, g);
    r.wait();
    const int p = c.size();
    EXPECT_EQ(in[0], (c.rank() - 1 + p) % p);
    EXPECT_EQ(in[1], (c.rank() - 2 + p) % p);
    EXPECT_EQ(in[2], (c.rank() - 1 + p) % p);
  });
}

TEST(Neighborhood, AsymmetricDegrees) {
  // Process 0 only sends; the rest only receive from 0 (star graph).
  mpl::run(4, [](Comm& c) {
    std::vector<int> sources, targets;
    if (c.rank() == 0) {
      targets = {1, 2, 3};
    } else {
      sources = {0};
    }
    DistGraphComm g = mpl::dist_graph_create_adjacent(c, sources, {}, targets, {});
    const std::vector<int> out{10, 20, 30};
    int in = -1;
    mpl::neighbor_alltoall(out.data(), 1, kInt, &in, 1, kInt, g);
    if (c.rank() != 0) {
      EXPECT_EQ(in, 10 * c.rank());
    }
  });
}

TEST(Neighborhood, LargeBlocksSerializedMatchesDirect) {
  // Both algorithms must produce identical results for multi-segment blocks.
  mpl::run(3, [](Comm& c) {
    DistGraphComm g = make_ring(c);
    constexpr int kN = 1000;  // > one 128-byte segment
    std::vector<int> out(kN);
    std::iota(out.begin(), out.end(), c.rank() * kN);
    std::vector<int> a(kN, -1), b(kN, -2);
    mpl::neighbor_alltoall(out.data(), kN, kInt, a.data(), kN, kInt, g,
                           NeighborAlgorithm::direct);
    mpl::neighbor_alltoall(out.data(), kN, kInt, b.data(), kN, kInt, g,
                           NeighborAlgorithm::serialized_rendezvous);
    EXPECT_EQ(a, b);
  });
}
