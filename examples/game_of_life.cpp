// game_of_life — Conway's Game of Life on a distributed periodic board.
//
// Each process owns a block of the board inside a stencil::Field; the
// Moore-neighborhood ghost frame is refreshed every generation with a
// HaloExchange in the Section 3.4 `combined` mode (corner-free face strips
// plus corner allgathers, fused into one schedule). A glider crosses the
// process boundaries; the global population is reported every few
// generations and the final pattern is printed.
#include <cstdio>
#include <vector>

#include "mpl/mpl.hpp"
#include "stencil/field.hpp"
#include "stencil/halo.hpp"

namespace {

constexpr int kProc = 2;     // 2x2 process grid
constexpr int kLocal = 12;   // local board size
constexpr int kGlobal = kProc * kLocal;
constexpr int kGenerations = 48;

}  // namespace

int main() {
  const std::vector<int> pdims{kProc, kProc};
  const std::vector<int> periods{1, 1};  // life on a torus

  mpl::run(kProc * kProc, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());

    stencil::Field<int> board({kLocal, kLocal}, 1);
    stencil::Field<int> scratch({kLocal, kLocal}, 1);
    stencil::HaloExchange halo(world, pdims, periods, board,
                               stencil::HaloMode::combined);

    // Seed a glider near the global origin (crosses process boundaries as
    // it travels down-right).
    auto set_global = [&](int gi, int gj) {
      const int li = gi - my[0] * kLocal;
      const int lj = gj - my[1] * kLocal;
      if (li >= 0 && li < kLocal && lj >= 0 && lj < kLocal) {
        board.at(1 + li, 1 + lj) = 1;
      }
    };
    set_global(1, 2);
    set_global(2, 3);
    set_global(3, 1);
    set_global(3, 2);
    set_global(3, 3);

    for (int gen = 0; gen <= kGenerations; ++gen) {
      // Global population check.
      int local_pop = 0;
      for (int i = 1; i <= kLocal; ++i) {
        for (int j = 1; j <= kLocal; ++j) local_pop += board.at(i, j);
      }
      const int pop = mpl::allreduce(local_pop, mpl::op::plus{}, world);
      if (world.rank() == 0 && gen % 8 == 0) {
        std::printf("generation %2d: population %d\n", gen, pop);
      }
      if (gen == kGenerations) break;

      halo.exchange();
      for (int i = 1; i <= kLocal; ++i) {
        for (int j = 1; j <= kLocal; ++j) {
          int n = 0;
          for (int di = -1; di <= 1; ++di) {
            for (int dj = -1; dj <= 1; ++dj) {
              if (di == 0 && dj == 0) continue;
              n += board.at(i + di, j + dj);
            }
          }
          const int alive = board.at(i, j);
          scratch.at(i, j) = (n == 3 || (alive && n == 2)) ? 1 : 0;
        }
      }
      for (int i = 1; i <= kLocal; ++i) {
        for (int j = 1; j <= kLocal; ++j) board.at(i, j) = scratch.at(i, j);
      }
    }

    // Assemble and print the final global board on rank 0.
    std::vector<int> mine(static_cast<std::size_t>(kLocal * kLocal));
    for (int i = 0; i < kLocal; ++i) {
      for (int j = 0; j < kLocal; ++j) {
        mine[static_cast<std::size_t>(i * kLocal + j)] = board.at(1 + i, 1 + j);
      }
    }
    std::vector<int> all(static_cast<std::size_t>(kGlobal * kGlobal));
    mpl::gather(mine.data(), kLocal * kLocal, mpl::Datatype::of<int>(),
                all.data(), kLocal * kLocal, mpl::Datatype::of<int>(), 0, world);
    if (world.rank() == 0) {
      std::printf("final board (glider after %d generations, %d rounds/%lld "
                  "bytes per exchange):\n",
                  kGenerations, halo.rounds(), halo.send_bytes());
      for (int gi = 0; gi < kGlobal; ++gi) {
        for (int gj = 0; gj < kGlobal; ++gj) {
          const int pr = gi / kLocal, pc = gj / kLocal;
          const int li = gi % kLocal, lj = gj % kLocal;
          const int rank = pr * kProc + pc;
          const int v = all[static_cast<std::size_t>(
              rank * kLocal * kLocal + li * kLocal + lj)];
          std::putchar(v ? '#' : '.');
        }
        std::putchar('\n');
      }
    }
  });
  return 0;
}
