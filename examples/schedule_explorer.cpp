// schedule_explorer — inspect the message-combining machinery without any
// application code: for a chosen stencil family member, print the Table 1
// statistics, the per-phase round structure of the alltoall and allgather
// schedules, the allgather tree volume under the three dimension orders,
// and the predicted trivial/combining cut-off block size for the two
// modeled fabrics.
//
// Usage: schedule_explorer [d] [n] [f]     (defaults: 3 3 -1)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 3;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;
  const int f = argc > 3 ? std::atoi(argv[3]) : -1;

  const cartcomm::Neighborhood nb = cartcomm::Neighborhood::stencil(d, n, f);
  const cartcomm::NeighborhoodStats s = cartcomm::analyze(nb);

  std::printf("stencil family d=%d n=%d f=%d: t = %d neighbors\n", d, n, f, s.t);
  std::printf("  trivial rounds     : %d\n", s.trivial_rounds);
  std::printf("  combining rounds C : %d\n", s.combining_rounds);
  std::printf("  alltoall volume V  : %lld blocks\n", s.alltoall_volume);
  std::printf("  allgather volume   : %lld blocks\n", s.allgather_volume);
  std::printf("  cut-off ratio      : %.3f\n", s.cutoff_ratio);
  for (auto [name, cfg] : {std::pair{"omnipath", mpl::NetConfig::omnipath()},
                           std::pair{"gemini", mpl::NetConfig::gemini()}}) {
    std::printf("  predicted cut-off on %-8s: %.0f bytes/block\n", name,
                cartcomm::predicted_cutoff_bytes(s, cfg));
  }

  std::printf("allgather tree volume by dimension order: natural %lld, "
              "increasing-Ck %lld, decreasing-Ck %lld\n",
              cartcomm::allgather_volume(nb, cartcomm::DimOrder::natural),
              cartcomm::allgather_volume(nb, cartcomm::DimOrder::increasing_ck),
              cartcomm::allgather_volume(nb, cartcomm::DimOrder::decreasing_ck));

  // Build the real schedules on a small torus and show their structure.
  std::vector<int> dims(static_cast<std::size_t>(d), 2);
  int p = 1;
  for (int x : dims) p *= x;
  mpl::run(p, [&](mpl::Comm& world) {
    auto cc = cartcomm::cart_neighborhood_create(world, dims, {}, nb);
    const int t = nb.count();
    std::vector<int> sb(static_cast<std::size_t>(t)), rb(static_cast<std::size_t>(t));
    auto a2a = cartcomm::alltoall_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                       rb.data(), 1, mpl::Datatype::of<int>(),
                                       cc, cartcomm::Algorithm::combining);
    auto ag = cartcomm::allgather_init(sb.data(), 1, mpl::Datatype::of<int>(),
                                       rb.data(), 1, mpl::Datatype::of<int>(),
                                       cc, cartcomm::Algorithm::combining);
    if (world.rank() == 0) {
      std::printf("alltoall schedule on a %d-process torus:\n", p);
      std::printf("  phases %d, rounds %d, blocks sent %lld, temp %zu bytes, "
                  "local copies %d\n",
                  a2a.schedule().phases(), a2a.schedule().rounds(),
                  a2a.schedule().send_block_count(), a2a.schedule().temp_bytes(),
                  a2a.schedule().copy_count());
      std::printf("  rounds per phase:");
      for (int r : a2a.schedule().phase_rounds()) std::printf(" %d", r);
      std::printf("\nallgather schedule:\n");
      std::printf("  phases %d, rounds %d, blocks sent %lld, temp %zu bytes, "
                  "local copies %d\n",
                  ag.schedule().phases(), ag.schedule().rounds(),
                  ag.schedule().send_block_count(), ag.schedule().temp_bytes(),
                  ag.schedule().copy_count());
      if (nb.count() <= 32) {
        std::printf("\nalltoall schedule detail (rank 0):\n%s",
                    a2a.schedule().describe().c_str());
      }
    }
  });
  return 0;
}
