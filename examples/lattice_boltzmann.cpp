// lattice_boltzmann — D2Q9 lattice-Boltzmann flow (lid-driven-style shear
// decay on a periodic domain), the kind of production stencil code the
// paper's interface targets: nine distribution functions per cell, a
// Moore-shaped communication pattern, and a persistent halo plan executed
// every time step.
//
// Each distribution function f_q streams along its own lattice velocity,
// so the halo exchange moves a different field component in each
// direction — exercised here through one combined HaloExchange per
// component field. The example initializes a sinusoidal shear wave and
// verifies the analytic viscous decay rate, plus exact mass conservation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpl/mpl.hpp"
#include "stencil/field.hpp"
#include "stencil/halo.hpp"

namespace {

constexpr int kProc = 2;    // 2x2 process grid
constexpr int kLocal = 16;  // local lattice size
constexpr int kGlobal = kProc * kLocal;
constexpr double kTau = 0.8;  // relaxation time; nu = (tau - 0.5)/3
constexpr int kSteps = 120;

// D2Q9 velocities and weights.
constexpr int kQ = 9;
constexpr int cx[kQ] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
constexpr int cy[kQ] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
constexpr double w[kQ] = {4.0 / 9,  1.0 / 9,  1.0 / 9,  1.0 / 9, 1.0 / 9,
                          1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

double feq(int q, double rho, double ux, double uy) {
  const double cu = 3.0 * (cx[q] * ux + cy[q] * uy);
  const double uu = 1.5 * (ux * ux + uy * uy);
  return w[q] * rho * (1.0 + cu + 0.5 * cu * cu - uu);
}

}  // namespace

int main() {
  const std::vector<int> pdims{kProc, kProc};
  const std::vector<int> periods{1, 1};

  mpl::run(kProc * kProc, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());

    // One padded field per distribution function, each with its own
    // persistent combined halo plan.
    std::vector<stencil::Field<double>> f;
    std::vector<stencil::HaloExchange> halo;
    f.reserve(kQ);
    for (int q = 0; q < kQ; ++q) f.emplace_back(std::vector<int>{kLocal, kLocal}, 1);
    halo.reserve(kQ);
    for (int q = 0; q < kQ; ++q) {
      halo.emplace_back(world, pdims, periods, f[static_cast<std::size_t>(q)],
                        stencil::HaloMode::combined);
    }
    std::vector<stencil::Field<double>> fnew = f;  // post-streaming buffers

    // Initial condition: shear wave u_x(y) = U sin(2 pi y / N), rho = 1.
    constexpr double U = 0.05;
    for (int i = 0; i < kLocal; ++i) {
      for (int j = 0; j < kLocal; ++j) {
        const int gy = my[0] * kLocal + i;
        const double ux = U * std::sin(2.0 * M_PI * gy / kGlobal);
        for (int q = 0; q < kQ; ++q) {
          f[static_cast<std::size_t>(q)].at(1 + i, 1 + j) = feq(q, 1.0, ux, 0.0);
        }
      }
    }

    auto moments = [&](double& mass, double& umax) {
      double local_mass = 0.0, local_umax = 0.0;
      for (int i = 1; i <= kLocal; ++i) {
        for (int j = 1; j <= kLocal; ++j) {
          double rho = 0.0, mx = 0.0;
          for (int q = 0; q < kQ; ++q) {
            const double v = f[static_cast<std::size_t>(q)].at(i, j);
            rho += v;
            mx += v * cx[q];
          }
          local_mass += rho;
          local_umax = std::max(local_umax, std::abs(mx / rho));
        }
      }
      mass = mpl::allreduce(local_mass, mpl::op::plus{}, world);
      umax = mpl::allreduce(local_umax, mpl::op::max{}, world);
    };

    double mass0, u0;
    moments(mass0, u0);
    if (world.rank() == 0) {
      std::printf("D2Q9 lattice-Boltzmann shear decay, %dx%d lattice on "
                  "%dx%d processes\n",
                  kGlobal, kGlobal, kProc, kProc);
      std::printf("halo plan per component: %d rounds\n", halo[1].rounds());
      std::printf("step %4d: mass %.6f, max |u_x| %.6f\n", 0, mass0, u0);
    }

    for (int s = 1; s <= kSteps; ++s) {
      // Collide (BGK relaxation toward equilibrium).
      for (int i = 1; i <= kLocal; ++i) {
        for (int j = 1; j <= kLocal; ++j) {
          double rho = 0.0, mx = 0.0, my_ = 0.0;
          for (int q = 0; q < kQ; ++q) {
            const double v = f[static_cast<std::size_t>(q)].at(i, j);
            rho += v;
            mx += v * cx[q];
            my_ += v * cy[q];
          }
          const double ux = mx / rho, uy = my_ / rho;
          for (int q = 0; q < kQ; ++q) {
            double& v = f[static_cast<std::size_t>(q)].at(i, j);
            v += (feq(q, rho, ux, uy) - v) / kTau;
          }
        }
      }
      // Exchange ghosts, then stream: f_q(x) <- f_q(x - c_q).
      for (int q = 1; q < kQ; ++q) halo[static_cast<std::size_t>(q)].exchange();
      for (int q = 1; q < kQ; ++q) {
        auto& src = f[static_cast<std::size_t>(q)];
        auto& dst = fnew[static_cast<std::size_t>(q)];
        for (int i = 1; i <= kLocal; ++i) {
          for (int j = 1; j <= kLocal; ++j) {
            dst.at(i, j) = src.at(i - cy[q], j - cx[q]);
          }
        }
        for (int i = 1; i <= kLocal; ++i) {
          for (int j = 1; j <= kLocal; ++j) src.at(i, j) = dst.at(i, j);
        }
      }
      if (s % 40 == 0) {
        double mass, umax;
        moments(mass, umax);
        if (world.rank() == 0) {
          std::printf("step %4d: mass %.6f, max |u_x| %.6f\n", s, mass, umax);
        }
      }
    }

    double mass1, u1;
    moments(mass1, u1);
    // Analytic viscous decay: u(t) = U exp(-nu k^2 t), nu = (tau-0.5)/3.
    const double nu = (kTau - 0.5) / 3.0;
    const double k2 = std::pow(2.0 * M_PI / kGlobal, 2);
    const double expect = U * std::exp(-nu * k2 * kSteps);
    if (world.rank() == 0) {
      std::printf("mass drift %.2e; final max |u_x| %.6f vs analytic %.6f "
                  "(%.1f%% off)\n",
                  std::abs(mass1 - mass0), u1, expect,
                  100.0 * std::abs(u1 - expect) / expect);
    }
  });
  return 0;
}
