// wave2d_high_order — second-order wave equation with a FOURTH-order
// spatial discretization: the "higher-order stencil" use case the paper
// cites as motivation for deeper ghost regions (its references [1], [12]).
//
// The 4th-order Laplacian reads two cells in each direction, so the field
// carries a depth-2 halo; one HaloExchange per step refreshes both layers
// (Moore-shell alltoallw with depth-2 strips — the "deeper ghost regions"
// variant of Listing 3). A standing wave on the periodic unit square is
// advanced one full period and compared against the analytic solution.
#include <cmath>
#include <cstdio>
#include <vector>

#include "cartcomm/neighborhood.hpp"
#include "mpl/mpl.hpp"
#include "stencil/apply.hpp"
#include "stencil/field.hpp"
#include "stencil/halo.hpp"

namespace {

constexpr int kProc = 2;
constexpr int kLocal = 24;
constexpr int kGlobal = kProc * kLocal;  // 48^2 cells
constexpr double kC = 1.0;               // wave speed
constexpr double kDx = 1.0 / kGlobal;

}  // namespace

int main() {
  const std::vector<int> pdims{kProc, kProc};
  const std::vector<int> periods{1, 1};

  mpl::run(kProc * kProc, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());

    stencil::Field<double> u({kLocal, kLocal}, 2);      // current step
    stencil::Field<double> uprev({kLocal, kLocal}, 2);  // previous step
    stencil::Field<double> lap({kLocal, kLocal}, 2);    // Laplacian scratch
    stencil::HaloExchange hu(world, pdims, periods, u);

    // 4th-order 9-point Laplacian (axis-aligned):
    //   (-u[i-2] + 16 u[i-1] - 30 u[i] + 16 u[i+1] - u[i+2]) / (12 dx^2)
    // per dimension, expressed as one Neighborhood + weight vector.
    std::vector<int> flat;
    std::vector<double> w;
    const double s = 1.0 / (12.0 * kDx * kDx);
    flat.insert(flat.end(), {0, 0});
    w.push_back(-60.0 * s);
    for (int k = 0; k < 2; ++k) {
      for (const auto& [off, wt] : {std::pair{-2, -1.0}, std::pair{-1, 16.0},
                                    std::pair{1, 16.0}, std::pair{2, -1.0}}) {
        std::vector<int> v{0, 0};
        v[static_cast<std::size_t>(k)] = off;
        flat.insert(flat.end(), v.begin(), v.end());
        w.push_back(wt * s);
      }
    }
    const cartcomm::Neighborhood laplacian(2, std::move(flat));

    // Standing wave u(x, y, t) = sin(2 pi x) sin(2 pi y) cos(omega t),
    // omega = c * |k| = c * 2 pi sqrt(2).
    const double omega = kC * 2.0 * M_PI * std::sqrt(2.0);
    auto analytic = [&](int gi, int gj, double tt) {
      const double x = (gi + 0.5) * kDx, y = (gj + 0.5) * kDx;
      return std::sin(2.0 * M_PI * x) * std::sin(2.0 * M_PI * y) *
             std::cos(omega * tt);
    };

    const double dt = 0.2 * kDx / kC;  // comfortably inside the CFL limit
    const int steps = static_cast<int>(std::lround(2.0 * M_PI / omega / dt));

    for (int i = 0; i < kLocal; ++i) {
      for (int j = 0; j < kLocal; ++j) {
        const int gi = my[0] * kLocal + i, gj = my[1] * kLocal + j;
        u.at(2 + i, 2 + j) = analytic(gi, gj, 0.0);
        uprev.at(2 + i, 2 + j) = analytic(gi, gj, -dt);
      }
    }

    if (world.rank() == 0) {
      std::printf("4th-order wave equation, %dx%d cells, depth-2 halo, "
                  "%d steps for one period\n",
                  kGlobal, kGlobal, steps);
    }

    for (int step = 0; step < steps; ++step) {
      hu.exchange();
      stencil::apply_stencil(u, lap, laplacian, w);
      // Leapfrog: u_next = 2u - u_prev + (c dt)^2 lap; reuse uprev storage.
      for (int i = 2; i < kLocal + 2; ++i) {
        for (int j = 2; j < kLocal + 2; ++j) {
          const double next = 2.0 * u.at(i, j) - uprev.at(i, j) +
                              kC * kC * dt * dt * lap.at(i, j);
          uprev.at(i, j) = u.at(i, j);
          u.at(i, j) = next;
        }
      }
    }

    // Error against the analytic solution after one period.
    const double tend = steps * dt;
    double local_err = 0.0, local_norm = 0.0;
    for (int i = 0; i < kLocal; ++i) {
      for (int j = 0; j < kLocal; ++j) {
        const int gi = my[0] * kLocal + i, gj = my[1] * kLocal + j;
        const double e = u.at(2 + i, 2 + j) - analytic(gi, gj, tend);
        local_err += e * e;
        local_norm += analytic(gi, gj, tend) * analytic(gi, gj, tend);
      }
    }
    const double err = mpl::allreduce(local_err, mpl::op::plus{}, world);
    const double norm = mpl::allreduce(local_norm, mpl::op::plus{}, world);
    if (world.rank() == 0) {
      std::printf("relative L2 error after one period: %.3e\n",
                  std::sqrt(err / norm));
    }
  });
  return 0;
}
