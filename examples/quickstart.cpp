// Quickstart: create a Cartesian neighborhood communicator for a 9-point
// (Moore) stencil on a 2-D torus and run one Cart_alltoall and one
// Cart_allgather, with both the trivial and the message-combining
// algorithms. Prints what moved where for rank 0.
//
// Build & run:   ./quickstart
#include <cstdio>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"

int main() {
  const std::vector<int> dims{3, 4};  // 12 processes on a 3x4 torus
  const int p = 12;

  mpl::run(p, [&](mpl::Comm& world) {
    // Every process supplies the SAME list of relative offsets — the
    // Cartesian (isomorphic) requirement that enables the local,
    // message-combining schedule computation.
    const cartcomm::Neighborhood nb = cartcomm::Neighborhood::moore(2);
    auto cart = cartcomm::cart_neighborhood_create(world, dims, /*periods=*/{},
                                                   nb);

    const int t = nb.count();  // 9, including the process itself
    std::vector<int> sendbuf(static_cast<std::size_t>(t));
    std::vector<int> recvbuf(static_cast<std::size_t>(t), -1);
    for (int i = 0; i < t; ++i) {
      sendbuf[static_cast<std::size_t>(i)] = world.rank() * 100 + i;
    }

    // Personalized exchange: block i goes to the neighbor at offset N[i].
    cartcomm::alltoall(sendbuf.data(), 1, mpl::Datatype::of<int>(),
                       recvbuf.data(), 1, mpl::Datatype::of<int>(), cart,
                       cartcomm::Algorithm::combining);

    if (world.rank() == 0) {
      std::printf("Cart_alltoall on a %dx%d torus, %d-point neighborhood\n",
                  dims[0], dims[1], t);
      const auto& s = cart.stats();
      std::printf("  trivial rounds: %d   combining rounds: %d   volume: %lld\n",
                  s.trivial_rounds, s.combining_rounds, s.alltoall_volume);
      for (int i = 0; i < t; ++i) {
        std::printf("  block %d: offset (%+d,%+d)  from rank %2d -> value %d\n",
                    i, nb.coord(i, 0), nb.coord(i, 1),
                    cart.source_ranks()[static_cast<std::size_t>(i)],
                    recvbuf[static_cast<std::size_t>(i)]);
      }
    }

    // Allgather: the same block replicated to all 9 neighbors.
    const int mine = world.rank() * 1000;
    std::vector<int> gathered(static_cast<std::size_t>(t), -1);
    cartcomm::allgather(&mine, 1, mpl::Datatype::of<int>(), gathered.data(), 1,
                        mpl::Datatype::of<int>(), cart);
    if (world.rank() == 0) {
      std::printf("Cart_allgather results at rank 0:");
      for (int v : gathered) std::printf(" %d", v);
      std::printf("\n");
    }
  });
  return 0;
}
