// heat2d — the 9-point stencil computation of Listing 3 in the paper,
// written against this library exactly as the paper sketches it: one
// matrix with a depth-1 ghost frame, per-neighbor ROW / COL / COR derived
// datatypes, a persistent Cart_alltoallw precomputed once with
// cart_alltoallw_init, and one execute() per Jacobi iteration.
//
// Solves the steady-state heat equation on the unit square with a hot top
// edge; prints the residual every few iterations and a coarse temperature
// map at the end.
#include <cmath>
#include <cstdio>
#include <vector>

#include "cartcomm/cartcomm.hpp"
#include "mpl/mpl.hpp"
#include "mpl/reduce.hpp"

namespace {

constexpr int kProcRows = 2, kProcCols = 2;
constexpr int kN = 24;  // local interior size (kN x kN per process)

inline int idx(int i, int j) { return i * (kN + 2) + j; }

}  // namespace

int main() {
  const std::vector<int> dims{kProcRows, kProcCols};
  const std::vector<int> periods{0, 0};  // open mesh: physical boundaries

  mpl::run(kProcRows * kProcCols, [&](mpl::Comm& world) {
    // --- Listing 3: neighborhood setup -----------------------------------
    // 8 targets: the four sides, then the four corners.
    const cartcomm::Neighborhood nb(
        2, {0, 1, 0, -1, -1, 0, 1, 0, -1, 1, 1, 1, 1, -1, -1, -1});
    auto cart = cartcomm::cart_neighborhood_create(world, dims, periods, nb);

    std::vector<double> matrix(static_cast<std::size_t>((kN + 2) * (kN + 2)), 0.0);
    std::vector<double> next = matrix;

    // ROW, COL and COR datatypes over the (kN+2)^2 matrix.
    const mpl::Datatype kDouble = mpl::Datatype::of<double>();
    const mpl::Datatype ROW = mpl::Datatype::contiguous(kN, kDouble);
    const mpl::Datatype COL =
        mpl::Datatype::vector(kN, 1, kN + 2, kDouble);
    const mpl::Datatype COR = kDouble;

    // --- Listing 3: per-neighbor counts, displacements, types ------------
    std::vector<int> sendcount(8, 1), recvcount(8, 1);
    std::vector<std::ptrdiff_t> senddisp(8), recvdisp(8);
    std::vector<mpl::Datatype> sendtype(8), recvtype(8);

    auto disp = [](int i, int j) {
      return static_cast<std::ptrdiff_t>(idx(i, j)) *
             static_cast<std::ptrdiff_t>(sizeof(double));
    };
    // Target 0: (0,+1) right column out, left halo in ... laid out in the
    // same order as the neighborhood above.
    sendtype[0] = COL; senddisp[0] = disp(1, kN);     recvtype[0] = COL; recvdisp[0] = disp(1, 0);
    sendtype[1] = COL; senddisp[1] = disp(1, 1);      recvtype[1] = COL; recvdisp[1] = disp(1, kN + 1);
    sendtype[2] = ROW; senddisp[2] = disp(1, 1);      recvtype[2] = ROW; recvdisp[2] = disp(kN + 1, 1);
    sendtype[3] = ROW; senddisp[3] = disp(kN, 1);     recvtype[3] = ROW; recvdisp[3] = disp(0, 1);
    sendtype[4] = COR; senddisp[4] = disp(1, kN);     recvtype[4] = COR; recvdisp[4] = disp(kN + 1, 0);
    sendtype[5] = COR; senddisp[5] = disp(kN, kN);    recvtype[5] = COR; recvdisp[5] = disp(0, 0);
    sendtype[6] = COR; senddisp[6] = disp(kN, 1);     recvtype[6] = COR; recvdisp[6] = disp(0, kN + 1);
    sendtype[7] = COR; senddisp[7] = disp(1, 1);      recvtype[7] = COR; recvdisp[7] = disp(kN + 1, kN + 1);

    // --- Listing 3: persistent schedule, reused every iteration ----------
    auto exchange = cartcomm::alltoallw_init(
        matrix.data(), sendcount, senddisp, sendtype, matrix.data(), recvcount,
        recvdisp, recvtype, cart, cartcomm::Algorithm::combining);

    const auto coords = cart.coords();
    auto fix_boundary = [&](std::vector<double>& m) {
      if (coords[0] == 0) {  // hot top edge
        for (int j = 0; j <= kN + 1; ++j) m[static_cast<std::size_t>(idx(0, j))] = 1.0;
      }
    };

    double residual = 1.0;
    int iter = 0;
    for (; iter < 2000 && residual > 1e-7; ++iter) {
      exchange.execute();  // update (Listing 3's Cart_alltoallw)
      fix_boundary(matrix);
      double local = 0.0;
      for (int i = 1; i <= kN; ++i) {
        for (int j = 1; j <= kN; ++j) {
          const double v =
              0.25 * (matrix[static_cast<std::size_t>(idx(i - 1, j))] +
                      matrix[static_cast<std::size_t>(idx(i + 1, j))] +
                      matrix[static_cast<std::size_t>(idx(i, j - 1))] +
                      matrix[static_cast<std::size_t>(idx(i, j + 1))]);
          local = std::max(local, std::abs(v - matrix[static_cast<std::size_t>(idx(i, j))]));
          next[static_cast<std::size_t>(idx(i, j))] = v;
        }
      }
      for (int i = 1; i <= kN; ++i) {
        for (int j = 1; j <= kN; ++j) {
          matrix[static_cast<std::size_t>(idx(i, j))] = next[static_cast<std::size_t>(idx(i, j))];
        }
      }
      residual = mpl::allreduce(local, mpl::op::max{}, world);
      if (world.rank() == 0 && iter % 200 == 0) {
        std::printf("iter %4d  residual %.3e\n", iter, residual);
      }
    }
    if (world.rank() == 0) {
      std::printf("stopped after %d iterations (residual %.3e)\n", iter,
                  residual);
    }

    // Coarse global map (gathered row-block averages).
    double avg = 0.0;
    for (int i = 1; i <= kN; ++i) {
      for (int j = 1; j <= kN; ++j) avg += matrix[static_cast<std::size_t>(idx(i, j))];
    }
    avg /= kN * kN;
    std::vector<double> all(static_cast<std::size_t>(world.size()));
    mpl::allgather(&avg, 1, mpl::Datatype::of<double>(), all.data(), 1,
                   mpl::Datatype::of<double>(), world);
    if (world.rank() == 0) {
      std::printf("block average temperatures:\n");
      for (int r = 0; r < kProcRows; ++r) {
        for (int c = 0; c < kProcCols; ++c) {
          std::printf("  %.4f", all[static_cast<std::size_t>(r * kProcCols + c)]);
        }
        std::printf("\n");
      }
    }
  });
  return 0;
}
