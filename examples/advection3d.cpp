// advection3d — first-order upwind advection of a Gaussian blob on a 3-D
// periodic domain, decomposed over a 3-D process torus.
//
// The 27-point ghost frame is refreshed with a HaloExchange over the full
// Moore shell (Cart_alltoallw with the message-combining schedule: 3
// phases, 6 rounds instead of 26). The blob drifts diagonally and must
// return to its starting position after one full domain traversal — the
// example checks mass conservation and the final blob center.
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpl/mpl.hpp"
#include "stencil/field.hpp"
#include "stencil/halo.hpp"

namespace {

constexpr int kP = 2;       // 2x2x2 process grid
constexpr int kL = 8;       // local cells per dimension
constexpr int kG = kP * kL; // global cells per dimension
constexpr double kCfl = 0.25;  // per-axis; total 3*kCfl < 1 keeps upwind stable

}  // namespace

int main() {
  const std::vector<int> pdims{kP, kP, kP};
  const std::vector<int> periods{1, 1, 1};

  mpl::run(kP * kP * kP, [&](mpl::Comm& world) {
    mpl::CartComm topo = mpl::cart_create(world, pdims, periods);
    const auto my = topo.grid().coords_of(world.rank());

    // Double buffering with one persistent halo plan per buffer (plans are
    // bound to the buffer addresses they were created with).
    stencil::Field<double> u({kL, kL, kL}, 1);
    stencil::Field<double> v({kL, kL, kL}, 1);
    stencil::HaloExchange halo_u(world, pdims, periods, u,
                                 stencil::HaloMode::alltoallw);
    stencil::HaloExchange halo_v(world, pdims, periods, v,
                                 stencil::HaloMode::alltoallw);
    const stencil::HaloExchange& halo = halo_u;

    // Gaussian blob centered at the domain center.
    for (int i = 0; i < kL; ++i) {
      for (int j = 0; j < kL; ++j) {
        for (int k = 0; k < kL; ++k) {
          const double x = my[0] * kL + i - kG / 2.0 + 0.5;
          const double y = my[1] * kL + j - kG / 2.0 + 0.5;
          const double z = my[2] * kL + k - kG / 2.0 + 0.5;
          const std::vector<int> idx{1 + i, 1 + j, 1 + k};
          u.at(idx) = std::exp(-(x * x + y * y + z * z) / 8.0);
        }
      }
    }

    auto mass = [&] {
      double local = 0.0;
      for (int i = 1; i <= kL; ++i) {
        for (int j = 1; j <= kL; ++j) {
          for (int k = 1; k <= kL; ++k) {
            const std::vector<int> idx{i, j, k};
            local += u.at(idx);
          }
        }
      }
      return mpl::allreduce(local, mpl::op::plus{}, world);
    };

    const double mass0 = mass();
    if (world.rank() == 0) {
      std::printf("3-D upwind advection, %d^3 cells on a %d^3 torus\n", kG, kP);
      std::printf("halo plan: %d rounds, %lld bytes per process per exchange\n",
                  halo.rounds(), halo.send_bytes());
      std::printf("initial mass %.6f\n", mass0);
    }

    // One full traversal: kG steps of kCfl cells per step along each axis.
    const int steps = static_cast<int>(kG / kCfl);
    for (int s = 0; s < steps; ++s) {
      stencil::Field<double>& src = (s % 2 == 0) ? u : v;
      stencil::Field<double>& dst = (s % 2 == 0) ? v : u;
      ((s % 2 == 0) ? halo_u : halo_v).exchange();
      for (int i = 1; i <= kL; ++i) {
        for (int j = 1; j <= kL; ++j) {
          for (int k = 1; k <= kL; ++k) {
            const std::vector<int> c{i, j, k};
            const std::vector<int> xm{i - 1, j, k};
            const std::vector<int> ym{i, j - 1, k};
            const std::vector<int> zm{i, j, k - 1};
            // Dimension-split upwind update for velocity (1,1,1).
            dst.at(c) = src.at(c) - kCfl * (3.0 * src.at(c) - src.at(xm) -
                                            src.at(ym) - src.at(zm));
          }
        }
      }
      if (world.rank() == 0 && s % 8 == 0) {
        std::printf("step %3d\n", s);
      }
    }
    if (steps % 2 == 1) {
      // Final state ended in v: copy back so the diagnostics read u.
      std::copy(v.data(), v.data() + v.size(), u.data());
    }

    const double mass1 = mass();
    // Center of mass (modulo the torus this is approximate: report the max
    // cell instead, which must be back near the domain center).
    double local_max = 0.0;
    std::vector<int> local_arg{0, 0, 0};
    for (int i = 1; i <= kL; ++i) {
      for (int j = 1; j <= kL; ++j) {
        for (int k = 1; k <= kL; ++k) {
          const std::vector<int> idx{i, j, k};
          if (u.at(idx) > local_max) {
            local_max = u.at(idx);
            local_arg = {my[0] * kL + i - 1, my[1] * kL + j - 1,
                         my[2] * kL + k - 1};
          }
        }
      }
    }
    const double global_max = mpl::allreduce(local_max, mpl::op::max{}, world);
    if (world.rank() == 0) {
      std::printf("final mass %.6f (drift %.2e)\n", mass1,
                  std::abs(mass1 - mass0));
    }
    if (local_max == global_max) {
      std::printf("peak %.4f at global cell (%d,%d,%d) on rank %d\n",
                  global_max, local_arg[0], local_arg[1], local_arg[2],
                  world.rank());
    }
  });
  return 0;
}
